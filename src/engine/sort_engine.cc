// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "engine/sort_engine.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <new>

#include "common/bit_util.h"
#include "common/failpoint.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "engine/external_run.h"
#include "engine/merge_path.h"
#include "engine/offset_value.h"
#include "sortalgo/radix_sort.h"
#include "sortalgo/row_sort.h"

namespace rowsort {

namespace {

/// Comparator-driven sorts poll for cancellation once per this many
/// comparisons (a comparison is a few ns, so ~tens of microseconds between
/// checks — far finer than the kCancelCheckRows row loops need).
constexpr uint64_t kCancelCheckCompares = 8192;

/// Process-unique id per engine instance; see spill_instance_.
uint64_t NextSpillInstanceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

RelationalSort::RelationalSort(SortSpec spec,
                               std::vector<LogicalType> input_types,
                               SortEngineConfig config)
    : spec_(std::move(spec)), input_types_(std::move(input_types)),
      config_(config), encoder_(spec_), payload_layout_(input_types_),
      comparator_(spec_, payload_layout_),
      tracker_(config.memory_limit_bytes, config.parent_tracker) {
  ROWSORT_ASSERT(!spec_.columns().empty());
  for (const auto& col : spec_.columns()) {
    ROWSORT_ASSERT(col.column_index < input_types_.size());
    ROWSORT_ASSERT(col.type == input_types_[col.column_index]);
  }
  ROWSORT_ASSERT(!(config_.algorithm == RunSortAlgorithm::kRadix &&
                   comparator_.needs_tie_resolution()) &&
                 "radix sort cannot resolve VARCHAR prefix ties");
  row_id_offset_ = bit_util::AlignValue(encoder_.key_width());
  key_row_width_ = row_id_offset_ + sizeof(uint64_t);
  spill_instance_ = NextSpillInstanceId();
  // Resolve the trace scope once: explicit config wins, then the
  // constructing thread's active scope (nested operator sorts stay inside
  // their query), then a fresh scope when a tracer wants spans at all.
  trace_scope_ = config_.trace_scope;
  if (trace_scope_ == 0) trace_scope_ = Tracer::CurrentScope();
  if (trace_scope_ == 0 && config_.trace != nullptr) {
    trace_scope_ = Tracer::NextScopeId();
  }
  cancel_.Reset(config_.cancellation);
  if (config_.governor != nullptr) {
    config_.governor->RegisterSort(this, config_.governor_priority);
  }
}

RelationalSort::~RelationalSort() {
  // Deregister before tearing anything down: UnregisterSort blocks until any
  // in-flight victim spill against this sort has drained, so no governor
  // thread can still be inside SpillResidentBytes past this point.
  if (config_.governor != nullptr) config_.governor->UnregisterSort(this);
  // Abandoned or failed pipelines must not leak spill files.
  for (const auto& entry : entries_) {
    if (entry.spilled) std::remove(entry.path.c_str());
  }
  if (created_spill_dir_) {
    std::error_code ec;
    std::filesystem::remove(resolved_spill_dir_, ec);  // best effort
  }
}

RelationalSort::LocalState::LocalState(const RelationalSort& sort)
    : payload_(sort.payload_layout_) {
  payload_.SetMemoryTracker(&sort.tracker_);
  ordinal_ = sort.next_local_ordinal_.fetch_add(1, std::memory_order_relaxed);
}

Status RelationalSort::status() const {
  std::lock_guard<std::mutex> lock(runs_mutex_);
  return first_error_;
}

Status RelationalSort::RecordError(Status status) {
  if (status.ok()) return status;
  {
    std::lock_guard<std::mutex> lock(runs_mutex_);
    if (first_error_.ok()) first_error_ = status;
    // Even an aborted pipeline reports its robustness counters — the cancel
    // latency, in particular, is only interesting when the sort *was*
    // cancelled, i.e. on this path.
    metrics_.io_retries = io_retry_stats_.count();
    metrics_.cancel_checks = cancel_.checks();
    metrics_.time_to_cancel_us = cancel_.time_to_cancel_us();
  }
  // Partial profile (docs/observability.md): a failed or cancelled sort
  // still reports where it was (active phase) and what it measured so far,
  // including the retry-backoff and spill-I/O histograms. Idempotent, so
  // every error path may call it.
  FoldRuntimeIntoProfile();
  return status;
}

void RelationalSort::FoldRuntimeIntoProfile() {
  SortMetrics snapshot;
  {
    std::lock_guard<std::mutex> lock(runs_mutex_);
    // The kernel counters keep moving after Finalize (ScanChunk gathers), so
    // refresh them whenever the profile is rebuilt.
    metrics_.rows_bulk_copied =
        rows_bulk_copied_.load(std::memory_order_relaxed);
    metrics_.gather_fast_path =
        kernel_stats_.gather_fast_path.load(std::memory_order_relaxed);
    metrics_.scatter_fast_path =
        kernel_stats_.scatter_fast_path.load(std::memory_order_relaxed);
    // The overlap counters keep moving until every writer/reader is done, so
    // refresh them here too (covers success, error, and cancellation).
    metrics_.io_wait_us =
        overlap_stats_.io_wait_us.load(std::memory_order_relaxed);
    metrics_.blocks_prefetched =
        overlap_stats_.blocks_prefetched.load(std::memory_order_relaxed);
    metrics_.write_behind_stalls =
        overlap_stats_.write_behind_stalls.load(std::memory_order_relaxed);
    // Compression counters move with every spill block written or decoded.
    metrics_.spill_bytes_raw =
        compression_stats_.bytes_raw.load(std::memory_order_relaxed);
    metrics_.spill_bytes_compressed =
        compression_stats_.bytes_compressed.load(std::memory_order_relaxed);
    metrics_.spill_sections_raw =
        compression_stats_.sections_raw.load(std::memory_order_relaxed);
    metrics_.spill_sections_prefix =
        compression_stats_.sections_prefix.load(std::memory_order_relaxed);
    metrics_.spill_sections_rle =
        compression_stats_.sections_rle.load(std::memory_order_relaxed);
    metrics_.spill_sections_lz =
        compression_stats_.sections_lz.load(std::memory_order_relaxed);
    metrics_.compress_us = static_cast<uint64_t>(
        compression_stats_.compress_ns.Snapshot().total_ns() / 1000);
    metrics_.decompress_us = static_cast<uint64_t>(
        compression_stats_.decompress_ns.Snapshot().total_ns() / 1000);
    snapshot = metrics_;
  }
  profile_.SetRows(snapshot.rows);
  profile_.SetPhaseSeconds(snapshot.sink_seconds, snapshot.run_sort_seconds,
                           snapshot.merge_seconds);
  profile_.SetRootCounter("runs_generated", snapshot.runs_generated);
  profile_.SetRootCounter("runs_spilled", snapshot.runs_spilled);
  if (snapshot.forced_spills > 0) {
    profile_.SetRootCounter("forced_spills", snapshot.forced_spills);
  }
  profile_.SetRootCounter("peak_memory_bytes", tracker_.peak());
  profile_.SetRootCounter("io_retries", io_retry_stats_.count());
  profile_.SetRootCounter("cancel_checks", cancel_.checks());
  profile_.SetRootCounter(
      "merge_compares", merge_compares_.load(std::memory_order_relaxed));
  profile_.SetRootCounter("rows_bulk_copied", snapshot.rows_bulk_copied);
  profile_.SetRootCounter("gather_fast_path", snapshot.gather_fast_path);
  profile_.SetRootCounter("scatter_fast_path", snapshot.scatter_fast_path);
  if (snapshot.merge_fan_in > 0) {
    profile_.SetRootCounter("merge_fan_in", snapshot.merge_fan_in);
  }
  if (snapshot.spill_bytes_raw > 0) {
    profile_.SetRootCounter("spill_bytes_raw", snapshot.spill_bytes_raw);
    profile_.SetRootCounter("spill_bytes_compressed",
                            snapshot.spill_bytes_compressed);
  }
  if (UseOvc()) {
    profile_.SetRootCounter("ovc_decided",
                            ovc_decided_.load(std::memory_order_relaxed));
    profile_.SetRootCounter("ovc_fallback_compares",
                            ovc_fallback_.load(std::memory_order_relaxed));
  }
  profile_.FoldMergeSlices();
  profile_.FoldSpillIo(spill_io_profile_);
  profile_.FoldRetryBackoff(io_retry_stats_.count(),
                            io_retry_stats_.backoff_waits.Snapshot());
  profile_.FoldSpillOverlap(overlap_stats_, io_worker_ != nullptr
                                                ? io_worker_->StatsSnapshot()
                                                : IoWorkerStatsSnapshot());
  profile_.FoldSpillCompression(compression_stats_);
}

IoWorker* RelationalSort::EnsureIoWorker() {
  std::call_once(io_worker_once_, [this] {
    auto worker = std::make_unique<IoWorker>();
    worker->EnableStats(true);
    io_worker_ = std::move(worker);
  });
  return io_worker_.get();
}

Status RelationalSort::Sink(LocalState& local, const DataChunk& chunk) {
  TraceScopeGuard scope(trace_scope_);
  ROWSORT_RETURN_NOT_OK(status());
  Status st;
  try {
    st = SinkImpl(local, chunk);
  } catch (const CancelledError& e) {
    st = e.ToStatus();
  } catch (const std::bad_alloc&) {
    st = Status::OutOfMemory("sort sink: allocation failed");
  }
  return RecordError(std::move(st));
}

Status RelationalSort::SinkImpl(LocalState& local, const DataChunk& chunk) {
  if (chunk.size() == 0) return Status::OK();
  // One check per chunk (<= kVectorSize rows) keeps sink latency bounded.
  ROWSORT_RETURN_NOT_OK(cancel_.CheckStatus());
  profile_.EnterPhase(SortPhase::kSink);
  TraceSpan span(config_.trace, "sink.chunk", "sink");
  Timer timer;
  const uint64_t count = chunk.size();
  const uint64_t old_count = local.count_;

  if (ROWSORT_FAILPOINT("sink_alloc")) throw std::bad_alloc();

  // Graceful degradation (§IX): if growing the local buffers would push the
  // working set over the limit, spill resident runs first. The estimate is
  // the fixed-width growth; string payloads are accounted as they land.
  const uint64_t incoming =
      count * (key_row_width_ + payload_layout_.row_width());
  if (tracker_.WouldExceed(incoming)) {
    // Global pressure first: a governor may free memory held by *other*
    // queries (docs/service.md); local spilling covers what remains.
    if (config_.governor != nullptr) {
      config_.governor->EnsureCapacity(incoming, this);
    }
    ROWSORT_RETURN_NOT_OK(SpillToFit(incoming));
  }

  // Key rows: [normalized key | padding | row id], one block of vectors at a
  // time so the conversion stays cache-resident (paper §VII).
  local.key_rows_.resize((old_count + count) * key_row_width_);
  local.key_memory_.Reset(&tracker_, local.key_rows_.capacity());
  uint8_t* key_base = local.key_rows_.data() + old_count * key_row_width_;
  encoder_.EncodeChunk(chunk, count, key_base, key_row_width_);
  for (uint64_t i = 0; i < count; ++i) {
    bit_util::StoreUnaligned<uint64_t>(
        key_base + i * key_row_width_ + row_id_offset_, old_count + i);
  }

  // Payload rows: every input column, scattered column by column through the
  // width-specialized kernels (all-valid columns skip per-row branches).
  local.payload_.AppendChunk(chunk, &kernel_stats_);
  local.count_ += count;
  const uint64_t sink_ns = timer.ElapsedNanos();
  local.profile_.chunks += 1;
  local.profile_.rows += count;
  local.profile_.sink_seconds += sink_ns * 1e-9;
  local.profile_.sink_chunk_ns.Record(sink_ns);

  if (local.count_ >= config_.run_size_rows) {
    return SortLocalRun(local);
  }
  return Status::OK();
}

Status RelationalSort::CombineLocal(LocalState& local) {
  TraceScopeGuard scope(trace_scope_);
  Status st = status();
  if (st.ok()) {
    try {
      if (local.count_ > 0) st = SortLocalRun(local);
    } catch (const CancelledError& e) {
      st = e.ToStatus();
    } catch (const std::bad_alloc&) {
      st = Status::OutOfMemory("sort combine: allocation failed");
    }
  }
  // The pipeline's single timing-aggregation path: everything this thread
  // measured folds into the shared metrics and profile exactly once, here —
  // even when the sort already failed, so a partial profile still reports
  // the work that was done. Sink/SortLocalRun never touch the shared
  // timings, which is what keeps concurrent sinks data-race-free.
  if (!local.combined_) {
    local.combined_ = true;
    {
      std::lock_guard<std::mutex> lock(runs_mutex_);
      metrics_.sink_seconds += local.profile_.sink_seconds;
      metrics_.run_sort_seconds += local.profile_.run_sort_seconds;
    }
    profile_.FoldThread(local.ordinal_, local.profile_);
  }
  return RecordError(std::move(st));
}

bool RelationalSort::UseRadix(uint64_t count) const {
  switch (config_.algorithm) {
    case RunSortAlgorithm::kRadix:
      return true;
    case RunSortAlgorithm::kPdq:
      return false;
    case RunSortAlgorithm::kAuto:
      // Paper §VII: radix sort, "or pdqsort if there are strings".
      return !comparator_.needs_tie_resolution() &&
             !config_.count_comparisons;
    case RunSortAlgorithm::kHeuristic:
      // Future work (§IX): distribution sort only where it wins — enough
      // rows to amortize the counting passes and a short enough key.
      return !comparator_.needs_tie_resolution() &&
             !config_.count_comparisons && count >= 4096 &&
             encoder_.key_width() <= 32;
  }
  return false;
}

Status RelationalSort::SortLocalRun(LocalState& local) {
  ROWSORT_RETURN_NOT_OK(cancel_.CheckStatus());
  profile_.EnterPhase(SortPhase::kRunSort);
  TraceSpan span(config_.trace, "run.sort", "run_sort");
  Timer timer;
  const uint64_t count = local.count_;
  const uint64_t krw = key_row_width_;
  uint8_t* keys = local.key_rows_.data();
  const bool use_radix = UseRadix(count);

  // The sort needs transient working memory: the radix aux buffer, the
  // reordered payload copy, and the OVC array. Make room before allocating.
  uint64_t extra = count * payload_layout_.row_width();
  if (use_radix) extra += count * krw;
  if (UseOvc()) extra += count * sizeof(uint64_t);
  if (tracker_.WouldExceed(extra)) {
    if (config_.governor != nullptr) {
      config_.governor->EnsureCapacity(extra, this);
    }
    ROWSORT_RETURN_NOT_OK(SpillToFit(extra));
  }

  if (use_radix) {
    std::vector<uint8_t> aux(count * krw);
    MemoryReservation aux_memory;
    aux_memory.Reset(&tracker_, aux.capacity());
    RadixSortConfig config;
    config.row_width = krw;
    config.key_offset = 0;
    config.key_width = encoder_.key_width();
    config.trace = config_.trace;
    config.prefetch = config_.use_movement_kernels;
    if (cancel_.enabled()) {
      // Checked once per radix pass; unwinds via CancelledError, caught at
      // the Sink/CombineLocal entry points like std::bad_alloc.
      config.cancellation_check = [this] { cancel_.ThrowIfCancelled(); };
    }
    if (config_.pdq_inside_msd) {
      RadixSortMsdWithPdq(keys, aux.data(), count, config);
    } else {
      RadixSort(keys, aux.data(), count, config);
    }
  } else if (comparator_.needs_tie_resolution()) {
    // pdqsort with memcmp; tied VARCHAR prefixes resolved from the (still
    // unsorted) payload rows via the row id carried in each key row.
    // Cancellation rides in the comparator (pdqsort has no pass structure
    // to hook): every kCancelCheckCompares comparisons the shared budget
    // hits zero and the token is polled.
    const RowCollection& payload = local.payload_;
    const uint64_t id_offset = row_id_offset_;
    const TupleComparator& cmp = comparator_;
    std::atomic<uint64_t>* counter =
        config_.count_comparisons ? &run_compares_ : nullptr;
    CancelChecker* cancel = cancel_.enabled() ? &cancel_ : nullptr;
    uint64_t check_budget = kCancelCheckCompares;
    uint64_t* budget = &check_budget;
    PdqSortRowsWith(keys, count, krw,
                    [&payload, id_offset, &cmp, counter, cancel,
                     budget](const uint8_t* a, const uint8_t* b) {
                      if (counter) counter->fetch_add(1, std::memory_order_relaxed);
                      if (cancel && --*budget == 0) {
                        *budget = kCancelCheckCompares;
                        cancel->ThrowIfCancelled();
                      }
                      uint64_t id_a = bit_util::LoadUnaligned<uint64_t>(a + id_offset);
                      uint64_t id_b = bit_util::LoadUnaligned<uint64_t>(b + id_offset);
                      return cmp.Compare(a, payload.GetRow(id_a), b,
                                         payload.GetRow(id_b)) < 0;
                    });
  } else {
    const uint64_t key_width = encoder_.key_width();
    std::atomic<uint64_t>* counter =
        config_.count_comparisons ? &run_compares_ : nullptr;
    if (counter != nullptr || cancel_.enabled()) {
      CancelChecker* cancel = cancel_.enabled() ? &cancel_ : nullptr;
      uint64_t check_budget = kCancelCheckCompares;
      uint64_t* budget = &check_budget;
      PdqSortRowsWith(keys, count, krw,
                      [key_width, counter, cancel, budget](const uint8_t* a,
                                                           const uint8_t* b) {
                        if (counter) counter->fetch_add(1, std::memory_order_relaxed);
                        if (cancel && --*budget == 0) {
                          *budget = kCancelCheckCompares;
                          cancel->ThrowIfCancelled();
                        }
                        return std::memcmp(a, b, key_width) < 0;
                      });
    } else {
      PdqSortRows(keys, count, krw, 0, key_width);
    }
  }

  // Reorder the payload into sorted order ("Then, we reorder the payload,
  // creating fully sorted runs", §VII). String payloads stay put: the new
  // collection adopts the old heap, so only fixed-size rows move.
  SortedRun run;
  run.count = count;
  run.key_row_width = krw;
  run.key_rows = std::move(local.key_rows_);
  local.key_memory_.Reset();  // the keys' bytes now belong to the run
  run.payload = RowCollection(payload_layout_);
  run.payload.SetMemoryTracker(&tracker_);
  run.payload.AppendUninitialized(count);
  const uint64_t source_null_mask = local.payload_.maybe_null_mask();
  const uint64_t width = payload_layout_.row_width();
  const bool prefetch = config_.use_movement_kernels;
  const uint8_t* sorted_keys = run.key_rows.data();
  for (uint64_t i = 0; i < count; ++i) {
    if ((i & (kCancelCheckRows - 1)) == 0) cancel_.ThrowIfCancelled();
    if (prefetch && i + kGatherPrefetchDistance < count) {
      // The sorted row ids hit effectively random payload rows; fetch the
      // source of the copy a few iterations ahead of the cursor.
      uint64_t ahead = bit_util::LoadUnaligned<uint64_t>(
          sorted_keys + (i + kGatherPrefetchDistance) * krw + row_id_offset_);
      ROWSORT_PREFETCH_READ(local.payload_.GetRow(ahead));
    }
    uint64_t row_id = bit_util::LoadUnaligned<uint64_t>(
        sorted_keys + i * krw + row_id_offset_);
    std::memcpy(run.payload.GetRow(i), local.payload_.GetRow(row_id), width);
  }
  // The reorder copied rows verbatim, so the sink-side NULL tracking is
  // exact for the run too (AppendUninitialized had tainted it).
  run.payload.SetMaybeNullMask(source_null_mask);
  run.payload.AdoptHeap(std::move(local.payload_));

  if (UseOvc()) {
    // Cache each row's first-difference offset+value against its run
    // predecessor; the merge phase compares these codes instead of key bytes.
    run.ovcs = DeriveRunOvcs(run, comparator_.key_width());
  }
  run.TrackMemory(&tracker_);

  // Reset the local state for the next run.
  local.key_rows_ = {};
  local.payload_ = RowCollection(payload_layout_);
  local.payload_.SetMemoryTracker(&tracker_);
  local.count_ = 0;

  // Timing stays thread-local (folded once at CombineLocal); only the run
  // registration below needs the shared lock.
  const uint64_t sort_ns = timer.ElapsedNanos();
  local.profile_.runs += 1;
  local.profile_.run_sort_seconds += sort_ns * 1e-9;
  local.profile_.block_sort_ns.Record(sort_ns);
  // A completed block sort means more sinking may follow on this thread.
  profile_.EnterPhase(SortPhase::kSink);

  {
    std::lock_guard<std::mutex> lock(runs_mutex_);
    metrics_.runs_generated += 1;
    metrics_.rows += count;
    entries_.push_back(RunEntry{std::move(run), std::string(), count, false});
    if (!config_.spill_directory.empty() && !tracker_.ChainLimited()) {
      // Pre-adaptive behavior (spill_directory without any memory limit in
      // the tracker chain): offload every run in the unified row format and
      // release its memory. Under a limit — own or a service's global
      // parent budget — runs stay resident until pressure demands spilling.
      ROWSORT_RETURN_NOT_OK(SpillEntryLocked(entries_.back()));
    } else if (tracker_.OverLimit()) {
      ROWSORT_RETURN_NOT_OK(SpillToFitLocked(0));
    }
  }
  return Status::OK();
}

Status RelationalSort::SpillToFit(uint64_t incoming_bytes) {
  std::lock_guard<std::mutex> lock(runs_mutex_);
  return SpillToFitLocked(incoming_bytes);
}

Status RelationalSort::SpillToFitLocked(uint64_t incoming_bytes) {
  while (tracker_.WouldExceed(incoming_bytes)) {
    // Largest resident run first: fewest spills for the most relief.
    RunEntry* largest = nullptr;
    for (auto& entry : entries_) {
      if (entry.spilled) continue;
      if (largest == nullptr ||
          entry.run.MemoryBytes() > largest->run.MemoryBytes()) {
        largest = &entry;
      }
    }
    // Nothing left to spill: the remaining reservation is thread-local sink
    // state and transient buffers. Proceed rather than fail — the limit
    // governs what the engine *can* evict (see docs/robustness.md).
    if (largest == nullptr) break;
    ROWSORT_RETURN_NOT_OK(SpillEntryLocked(*largest));
  }
  return Status::OK();
}

uint64_t RelationalSort::MinSpillWorkingSetBytes() const {
  const uint64_t block_rows =
      std::min<uint64_t>(kDefaultSpillBlockRows,
                         std::max<uint64_t>(config_.run_size_rows, 1));
  return block_rows * (key_row_width_ + payload_layout_.row_width());
}

uint64_t RelationalSort::SpillResidentBytes(uint64_t target_bytes) {
  // Victim spills run on the *governor's* thread; scope the spill spans to
  // the victim query, where the freed memory actually lives.
  TraceScopeGuard scope(trace_scope_);
  std::lock_guard<std::mutex> lock(runs_mutex_);
  if (merge_active_) return 0;
  uint64_t freed = 0;
  while (freed < target_bytes) {
    RunEntry* largest = nullptr;
    for (auto& entry : entries_) {
      if (entry.spilled) continue;
      if (largest == nullptr ||
          entry.run.MemoryBytes() > largest->run.MemoryBytes()) {
        largest = &entry;
      }
    }
    if (largest == nullptr) break;
    const uint64_t bytes = largest->run.MemoryBytes();
    // A failed spill leaves the entry resident and intact (the writer works
    // through a temp file) — stop evicting and report what was freed. The
    // error is not recorded against this sort: the victim did nothing
    // wrong, and its own pipeline may well complete without ever spilling.
    if (!SpillEntryLocked(*largest).ok()) break;
    freed += bytes;
    metrics_.forced_spills += 1;
  }
  return freed;
}

Status RelationalSort::SpillEntryLocked(RunEntry& entry) {
  ROWSORT_DASSERT(!entry.spilled);
  // Fail fast under a hopeless budget: spilling moves data one block at a
  // time, so a nonzero limit smaller than a single block can only thrash.
  // Naming the floor lets the caller fix the configuration instead of
  // guessing.
  if (tracker_.limit() != 0 && tracker_.limit() < MinSpillWorkingSetBytes()) {
    return Status::OutOfMemory(StringFormat(
        "memory_limit_bytes=%llu is below the minimum workable limit for "
        "this sort (%llu bytes = one spill block); raise the limit or use 0 "
        "for unlimited",
        (unsigned long long)tracker_.limit(),
        (unsigned long long)MinSpillWorkingSetBytes()));
  }
  ROWSORT_RETURN_NOT_OK(EnsureSpillDirLocked());
  std::string path = NextSpillPathLocked();
  TraceSpan span(config_.trace, "spill.run", "spill");
  ROWSORT_RETURN_NOT_OK(
      WriteRunToFile(entry.run, payload_layout_, path, IoOptions()));
  entry.run = SortedRun();  // releases keys, codes, payload + reservations
  entry.path = std::move(path);
  entry.spilled = true;
  metrics_.runs_spilled += 1;
  return Status::OK();
}

Status RelationalSort::EnsureSpillDirLocked() {
  if (!resolved_spill_dir_.empty()) return Status::OK();
  if (!config_.spill_directory.empty()) {
    resolved_spill_dir_ = config_.spill_directory;
    return Status::OK();
  }
  // Memory limit set but no spill directory configured: use a private
  // directory under the system temp path, removed with the engine.
  std::error_code ec;
  std::filesystem::path base = std::filesystem::temp_directory_path(ec);
  if (ec) {
    return Status::IOError("cannot resolve temp directory for spilling: " +
                           ec.message());
  }
  std::filesystem::path dir =
      base / StringFormat("rowsort_spill_%p", static_cast<const void*>(this));
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create spill directory " + dir.string() +
                           ": " + ec.message());
  }
  resolved_spill_dir_ = dir.string();
  created_spill_dir_ = true;
  return Status::OK();
}

std::string RelationalSort::NextSpillPathLocked() {
  return StringFormat("%s/run_%llu_%llu.rsrun", resolved_spill_dir_.c_str(),
                      (unsigned long long)spill_instance_,
                      (unsigned long long)spill_counter_++);
}

void RelationalSort::MergeSlice(const SortedRun& left, const SortedRun& right,
                                uint64_t left_begin, uint64_t left_end,
                                uint64_t right_begin, uint64_t right_end,
                                SortedRun* out, uint64_t out_begin) {
  TraceSpan span(config_.trace, "merge.slice", "merge");
  Timer timer;
  const uint64_t krw = key_row_width_;
  const uint64_t prw = payload_layout_.row_width();
  uint64_t l = left_begin, r = right_begin, o = out_begin;
  uint8_t* out_keys = out->key_rows.data();
  std::atomic<uint64_t>* counter =
      config_.count_comparisons ? &merge_compares_ : nullptr;
  uint64_t until_check = kCancelCheckRows;
  const bool batch = config_.use_movement_kernels;
  uint64_t bulk_rows = 0;

  // Run-length batched emission (docs/architecture.md): rows taken
  // consecutively from the same input run accumulate into one pending range
  // and are flushed with a single wide memcpy per region when the winning
  // side flips. With batching off every row flushes immediately — the
  // per-row memcpy baseline.
  const SortedRun* pend_run = nullptr;
  uint64_t pend_begin = 0, pend_len = 0;
  auto flush_pending = [&]() {
    if (pend_len == 0) return;
    std::memcpy(out_keys + (o - pend_len) * krw, pend_run->KeyRow(pend_begin),
                pend_len * krw);
    std::memcpy(out->payload.GetRow(o - pend_len),
                pend_run->PayloadRow(pend_begin), pend_len * prw);
    if (pend_len > 1) bulk_rows += pend_len;
    pend_len = 0;
  };
  auto take = [&](const SortedRun& src, uint64_t i) {
    if (pend_run != &src || pend_begin + pend_len != i) {
      flush_pending();
      pend_run = &src;
      pend_begin = i;
    }
    ++pend_len;
    ++o;
    if (!batch) flush_pending();
  };

  while (l < left_end && r < right_end) {
    if (--until_check == 0) {
      until_check = kCancelCheckRows;
      cancel_.ThrowIfCancelled();  // pool tasks: rethrown at the submitter
    }
    // Full tuple comparison with memcmp (+ string ties), §VII.
    if (counter) counter->fetch_add(1, std::memory_order_relaxed);
    int cmp = comparator_.Compare(left.KeyRow(l), left.PayloadRow(l),
                                  right.KeyRow(r), right.PayloadRow(r));
    if (cmp <= 0) {  // stable: left wins ties
      take(left, l);
      ++l;
    } else {
      take(right, r);
      ++r;
    }
  }
  flush_pending();
  // Exhausted-side tails stream through in cancellation-check-sized chunks
  // instead of row at a time.
  auto drain = [&](const SortedRun& src, uint64_t pos, uint64_t end) {
    while (pos < end) {
      uint64_t n = batch ? std::min(end - pos, until_check) : 1;
      std::memcpy(out_keys + o * krw, src.KeyRow(pos), n * krw);
      std::memcpy(out->payload.GetRow(o), src.PayloadRow(pos), n * prw);
      if (n > 1) bulk_rows += n;
      o += n;
      pos += n;
      until_check -= n;
      if (until_check == 0) {
        until_check = kCancelCheckRows;
        cancel_.ThrowIfCancelled();
      }
    }
  };
  drain(left, l, left_end);
  drain(right, r, right_end);
  if (bulk_rows > 0) {
    rows_bulk_copied_.fetch_add(bulk_rows, std::memory_order_relaxed);
  }
  profile_.RecordMergeSlice(timer.ElapsedNanos(),
                            (left_end - left_begin) + (right_end - right_begin));
}

/// OVC 2-way merge of one Merge Path partition. Invariant maintained after
/// the seed comparison: both heads' codes are relative to the last emitted
/// row. A comparison then needs key bytes only when the codes are equal and
/// non-zero, and the suffix scan it performs yields the loser's new code
/// relative to the winner for free (offset-value coding's merge logic,
/// arXiv:2209.08420 §3).
void RelationalSort::MergeSliceOvc(const SortedRun& left,
                                   const SortedRun& right, uint64_t left_begin,
                                   uint64_t left_end, uint64_t right_begin,
                                   uint64_t right_end, SortedRun* out,
                                   uint64_t out_begin) {
  TraceSpan trace_span(config_.trace, "merge.slice", "merge");
  Timer slice_timer;
  const uint64_t krw = key_row_width_;
  const uint64_t prw = payload_layout_.row_width();
  const uint64_t kw = comparator_.key_width();
  uint64_t l = left_begin, r = right_begin, o = out_begin;
  uint8_t* out_keys = out->key_rows.data();
  uint64_t* out_ovcs = out->ovcs.data();
  uint64_t decided = 0, fallback = 0;
  const bool batch = config_.use_movement_kernels;
  uint64_t bulk_rows = 0;

  // Run-length batching like MergeSlice: key/payload copies are deferred
  // until the winning side flips, then flushed as one wide memcpy per
  // region. The OVC stores stay per-row — the winner's code depends on the
  // comparison just made.
  const SortedRun* pend_run = nullptr;
  uint64_t pend_begin = 0, pend_len = 0;
  auto flush_pending = [&]() {
    if (pend_len == 0) return;
    std::memcpy(out_keys + (o - pend_len) * krw, pend_run->KeyRow(pend_begin),
                pend_len * krw);
    std::memcpy(out->payload.GetRow(o - pend_len),
                pend_run->PayloadRow(pend_begin), pend_len * prw);
    if (pend_len > 1) bulk_rows += pend_len;
    pend_len = 0;
  };
  auto take = [&](const SortedRun& src, uint64_t i) {
    if (pend_run != &src || pend_begin + pend_len != i) {
      flush_pending();
      pend_run = &src;
      pend_begin = i;
    }
    ++pend_len;
    ++o;
    if (!batch) flush_pending();
  };

  // Head codes; until the seed comparison establishes the shared base these
  // are relative to each run's own predecessor and only land in the first
  // output slot, which MergePair re-derives at every partition boundary.
  uint64_t ovc_l = l < left_end ? left.ovcs[l] : kOvcEqual;
  uint64_t ovc_r = r < right_end ? right.ovcs[r] : kOvcEqual;
  bool have_base = false;
  uint64_t until_check = kCancelCheckRows;

  while (l < left_end && r < right_end) {
    if (--until_check == 0) {
      until_check = kCancelCheckRows;
      cancel_.ThrowIfCancelled();  // pool tasks: rethrown at the submitter
    }
    bool take_left;
    if (!have_base) {
      // Slices start mid-run: the heads' stored codes are relative to
      // different predecessors, so seed with one full comparison that also
      // produces the loser's code relative to the winner.
      uint64_t diff = 0;
      int cmp = CompareKeySuffix(left.KeyRow(l), right.KeyRow(r), 0, kw, &diff);
      ++fallback;
      take_left = cmp <= 0;  // stable: left wins ties
      if (cmp == 0) {
        if (take_left) ovc_r = kOvcEqual;
      } else if (take_left) {
        ovc_r = MakeOvc(kw, diff, right.KeyRow(r)[diff]);
      } else {
        ovc_l = MakeOvc(kw, diff, left.KeyRow(l)[diff]);
      }
      have_base = true;
    } else if (ovc_l != ovc_r) {
      // Different codes against the same base decide the order outright; the
      // loser's code stays valid relative to the winner.
      ++decided;
      take_left = ovc_l < ovc_r;
    } else if (ovc_l == kOvcEqual) {
      // Both heads equal the last emitted row, hence each other.
      ++decided;
      take_left = true;
    } else {
      // Equal non-zero codes: same first difference from the base, order
      // decided by the bytes past the cached offset.
      uint64_t begin = OvcDiffIndex(kw, ovc_l) + 1;
      uint64_t diff = 0;
      int cmp = begin >= kw
                    ? 0
                    : CompareKeySuffix(left.KeyRow(l), right.KeyRow(r), begin,
                                       kw, &diff);
      ++fallback;
      take_left = cmp <= 0;
      if (cmp == 0) {
        if (take_left) ovc_r = kOvcEqual;
      } else if (take_left) {
        ovc_r = MakeOvc(kw, diff, right.KeyRow(r)[diff]);
      } else {
        ovc_l = MakeOvc(kw, diff, left.KeyRow(l)[diff]);
      }
    }
    if (take_left) {
      out_ovcs[o] = ovc_l;  // the winner's code is relative to the previous
                            // output row — exactly the output run's code
      take(left, l);
      if (++l < left_end) ovc_l = left.ovcs[l];  // run code vs just-emitted
    } else {
      out_ovcs[o] = ovc_r;
      take(right, r);
      if (++r < right_end) ovc_r = right.ovcs[r];
    }
  }
  flush_pending();
  // One side exhausted: the first copied row's code relative to the last
  // emitted row is its current head code (invariant), the rest are
  // run-consecutive so their stored codes carry over — one bulk copy for
  // the codes, cancellation-check-sized chunks for keys and payload.
  auto drain = [&](const SortedRun& src, uint64_t pos, uint64_t end,
                   uint64_t head_code) {
    if (pos >= end) return;
    out_ovcs[o] = head_code;
    if (end - pos > 1) {
      std::memcpy(out_ovcs + o + 1, src.ovcs.data() + pos + 1,
                  (end - pos - 1) * sizeof(uint64_t));
    }
    while (pos < end) {
      uint64_t n = batch ? std::min(end - pos, until_check) : 1;
      std::memcpy(out_keys + o * krw, src.KeyRow(pos), n * krw);
      std::memcpy(out->payload.GetRow(o), src.PayloadRow(pos), n * prw);
      if (n > 1) bulk_rows += n;
      o += n;
      pos += n;
      until_check -= n;
      if (until_check == 0) {
        until_check = kCancelCheckRows;
        cancel_.ThrowIfCancelled();
      }
    }
  };
  drain(left, l, left_end, ovc_l);
  drain(right, r, right_end, ovc_r);

  if (bulk_rows > 0) {
    rows_bulk_copied_.fetch_add(bulk_rows, std::memory_order_relaxed);
  }
  ovc_decided_.fetch_add(decided, std::memory_order_relaxed);
  ovc_fallback_.fetch_add(fallback, std::memory_order_relaxed);
  if (config_.count_comparisons) {
    // In the OVC path the fallbacks are the full key comparisons.
    merge_compares_.fetch_add(fallback, std::memory_order_relaxed);
  }
  profile_.RecordMergeSlice(slice_timer.ElapsedNanos(),
                            (left_end - left_begin) + (right_end - right_begin));
}

SortedRun RelationalSort::MergePair(const SortedRun& left,
                                    const SortedRun& right, ThreadPool* pool) {
  SortedRun out;
  out.count = left.count + right.count;
  out.key_row_width = key_row_width_;
  out.key_rows.resize(out.count * key_row_width_);
  out.payload = RowCollection(payload_layout_);
  out.payload.AppendUninitialized(out.count);
  // Merged rows are verbatim copies of input rows, so the union of the
  // inputs' NULL masks is exact (AppendUninitialized had tainted it).
  out.payload.SetMaybeNullMask(left.payload.maybe_null_mask() |
                               right.payload.maybe_null_mask());
  const bool ovc = UseOvc();
  if (ovc) out.ovcs.resize(out.count);

  const uint64_t partitions =
      pool != nullptr ? std::max<uint64_t>(pool->thread_count(), 1) : 1;
  std::vector<uint64_t> boundaries{0};
  if (partitions <= 1 || out.count < 2 * kVectorSize) {
    if (ovc) {
      MergeSliceOvc(left, right, 0, left.count, 0, right.count, &out, 0);
    } else {
      MergeSlice(left, right, 0, left.count, 0, right.count, &out, 0);
    }
  } else {
    // Merge Path: cut both runs at evenly spaced output diagonals; each
    // partition merges independently (§VII).
    std::vector<uint64_t> left_cuts(partitions + 1), right_cuts(partitions + 1);
    left_cuts[0] = right_cuts[0] = 0;
    left_cuts[partitions] = left.count;
    right_cuts[partitions] = right.count;
    for (uint64_t p = 1; p < partitions; ++p) {
      uint64_t diagonal = out.count * p / partitions;
      uint64_t i = MergePathSearch(left, right, comparator_, diagonal);
      left_cuts[p] = i;
      right_cuts[p] = diagonal - i;
      boundaries.push_back(diagonal);
    }
    std::vector<std::function<void()>> tasks;
    for (uint64_t p = 0; p < partitions; ++p) {
      uint64_t out_begin = left_cuts[p] + right_cuts[p];
      tasks.push_back([this, &left, &right, &left_cuts, &right_cuts, &out,
                       out_begin, ovc, p] {
        if (ovc) {
          MergeSliceOvc(left, right, left_cuts[p], left_cuts[p + 1],
                        right_cuts[p], right_cuts[p + 1], &out, out_begin);
        } else {
          MergeSlice(left, right, left_cuts[p], left_cuts[p + 1],
                     right_cuts[p], right_cuts[p + 1], &out, out_begin);
        }
      });
    }
    // The token lets the pool skip not-yet-started slices once cancelled;
    // the check below turns that silent skip (RunBatch returns normally)
    // into the unwind the callers expect — without it a partially merged
    // run would flow on as if complete.
    pool->RunBatch(std::move(tasks), config_.cancellation);
    cancel_.ThrowIfCancelled();
  }
  if (ovc && out.count > 0) {
    // Each slice's first output row precedes rows another slice produced, so
    // its code could not be derived in parallel; re-derive at the cuts (and
    // re-anchor row 0 to the virtual -inf base).
    const uint64_t kw = comparator_.key_width();
    uint64_t fixups = 0;
    for (uint64_t b : boundaries) {
      if (b >= out.count) continue;  // empty tail partition
      out.ovcs[b] = b == 0 ? DeriveHeadOvc(out.KeyRow(0), kw)
                           : DeriveSuccessorOvc(out.KeyRow(b - 1),
                                                out.KeyRow(b), kw);
      ++fixups;
    }
    ovc_fallback_.fetch_add(fixups, std::memory_order_relaxed);
    if (config_.count_comparisons) {
      merge_compares_.fetch_add(fixups, std::memory_order_relaxed);
    }
  }
  return out;
}

SortedRun RelationalSort::MergeKWay(std::vector<SortedRun>& runs) {
  return UseOvc() ? MergeKWayLoserTree(runs) : MergeKWayHeap(runs);
}

SortedRun RelationalSort::MergeKWayHeap(std::vector<SortedRun>& runs) {
  TraceSpan span(config_.trace, "merge.kway", "merge");
  Timer timer;
  SortedRun out;
  out.key_row_width = key_row_width_;
  out.payload = RowCollection(payload_layout_);
  uint64_t total = 0;
  uint64_t null_mask = 0;
  for (const auto& run : runs) {
    total += run.count;
    null_mask |= run.payload.maybe_null_mask();
  }
  out.count = total;
  out.key_rows.resize(total * key_row_width_);
  out.payload.AppendUninitialized(total);
  out.payload.SetMaybeNullMask(null_mask);  // verbatim copies: union is exact

  // Binary min-heap of run cursors; ties break toward the lower run index.
  struct Cursor {
    const SortedRun* run;
    uint64_t pos;
    uint64_t index;
  };
  std::vector<Cursor> heap;
  for (uint64_t r = 0; r < runs.size(); ++r) {
    if (runs[r].count > 0) heap.push_back({&runs[r], 0, r});
  }
  std::atomic<uint64_t>* counter =
      config_.count_comparisons ? &merge_compares_ : nullptr;
  auto greater = [&](const Cursor& a, const Cursor& b) {
    if (counter) counter->fetch_add(1, std::memory_order_relaxed);
    int cmp = comparator_.Compare(a.run->KeyRow(a.pos),
                                  a.run->PayloadRow(a.pos),
                                  b.run->KeyRow(b.pos),
                                  b.run->PayloadRow(b.pos));
    if (cmp != 0) return cmp > 0;
    return a.index > b.index;
  };
  auto sift_down = [&](uint64_t root) {
    uint64_t size = heap.size();
    while (true) {
      uint64_t child = 2 * root + 1;
      if (child >= size) break;
      if (child + 1 < size && greater(heap[child], heap[child + 1])) ++child;
      if (!greater(heap[root], heap[child])) break;
      std::swap(heap[root], heap[child]);
      root = child;
    }
  };
  for (uint64_t i = heap.size(); i-- > 0;) sift_down(i);

  const uint64_t krw = key_row_width_;
  const uint64_t prw = payload_layout_.row_width();
  const bool batch = config_.use_movement_kernels;
  uint64_t bulk_rows = 0;
  uint64_t o = 0;
  // Run-length batching, like MergeSlice: consecutive wins by the same run
  // accumulate and flush as one wide memcpy per region.
  const SortedRun* pend_run = nullptr;
  uint64_t pend_begin = 0, pend_len = 0;
  auto flush_pending = [&]() {
    if (pend_len == 0) return;
    std::memcpy(out.key_rows.data() + (o - pend_len) * krw,
                pend_run->KeyRow(pend_begin), pend_len * krw);
    std::memcpy(out.payload.GetRow(o - pend_len),
                pend_run->PayloadRow(pend_begin), pend_len * prw);
    if (pend_len > 1) bulk_rows += pend_len;
    pend_len = 0;
  };
  while (!heap.empty()) {
    if ((o & (kCancelCheckRows - 1)) == 0) cancel_.ThrowIfCancelled();
    Cursor& top = heap[0];
    if (pend_run != top.run || pend_begin + pend_len != top.pos) {
      flush_pending();
      pend_run = top.run;
      pend_begin = top.pos;
    }
    ++pend_len;
    ++o;
    if (!batch) flush_pending();
    if (++top.pos == top.run->count) {
      heap[0] = heap.back();
      heap.pop_back();
    }
    if (!heap.empty()) sift_down(0);
  }
  flush_pending();
  if (bulk_rows > 0) {
    rows_bulk_copied_.fetch_add(bulk_rows, std::memory_order_relaxed);
  }

  for (auto& run : runs) {
    out.payload.AdoptHeap(std::move(run.payload));
  }
  profile_.RecordMergeSlice(timer.ElapsedNanos(), total);
  return out;
}

/// Tournament loser tree over all runs with offset-value codes at the nodes
/// (Graefe & Do, arXiv:2209.08420; arXiv:2210.00034 §4). Every run cursor
/// carries a code relative to the most recently emitted row; replacement
/// keys enter with their precomputed run code (their run predecessor *is*
/// the emitted row) and ascend the same leaf-to-root path the winner took,
/// meeting losers whose codes are relative to that same row — so a node
/// comparison is one integer compare unless the codes tie, and the rare
/// suffix scan repairs the loser's code in passing.
SortedRun RelationalSort::MergeKWayLoserTree(std::vector<SortedRun>& runs) {
  TraceSpan span(config_.trace, "merge.kway", "merge");
  Timer timer;
  SortedRun out;
  out.key_row_width = key_row_width_;
  out.payload = RowCollection(payload_layout_);
  uint64_t total = 0;
  uint64_t null_mask = 0;
  for (const auto& run : runs) {
    total += run.count;
    null_mask |= run.payload.maybe_null_mask();
  }
  out.count = total;
  out.key_rows.resize(total * key_row_width_);
  out.payload.AppendUninitialized(total);
  out.payload.SetMaybeNullMask(null_mask);  // verbatim copies: union is exact

  const uint64_t kw = comparator_.key_width();
  // Leaves padded to a power of two; virtual leaves are exhausted cursors.
  uint64_t leaves = 1;
  while (leaves < runs.size() || leaves < 2) leaves <<= 1;
  struct Cursor {
    const SortedRun* run = nullptr;
    uint64_t pos = 0;
    uint64_t ovc = kOvcExhausted;
  };
  std::vector<Cursor> cursors(leaves);
  for (uint64_t r = 0; r < runs.size(); ++r) {
    if (runs[r].count == 0) continue;
    ROWSORT_DASSERT(runs[r].ovcs.size() == runs[r].count);
    cursors[r] = {&runs[r], 0, runs[r].ovcs[0]};  // code vs the -inf base
  }
  uint64_t decided = 0, fallback = 0;

  // True iff leaf a's key precedes leaf b's. Both codes are relative to the
  // same base row; the loser's code is left (or repaired) relative to the
  // winner, preserving the tree invariant for the next visit of this node.
  auto precedes = [&](uint32_t a, uint32_t b) -> bool {
    Cursor& ca = cursors[a];
    Cursor& cb = cursors[b];
    if (ca.ovc == kOvcExhausted || cb.ovc == kOvcExhausted) {
      return ca.ovc != kOvcExhausted;
    }
    if (ca.ovc != cb.ovc) {
      ++decided;
      return ca.ovc < cb.ovc;
    }
    if (ca.ovc == kOvcEqual) {
      // Both equal the emitted base row: stable tie-break by run index.
      ++decided;
      return a < b;
    }
    const uint8_t* ka = ca.run->KeyRow(ca.pos);
    const uint8_t* kb = cb.run->KeyRow(cb.pos);
    uint64_t begin = OvcDiffIndex(kw, ca.ovc) + 1;
    uint64_t diff = 0;
    ++fallback;
    int cmp = begin >= kw ? 0 : CompareKeySuffix(ka, kb, begin, kw, &diff);
    if (cmp == 0) {
      bool a_first = a < b;
      (a_first ? cb : ca).ovc = kOvcEqual;  // loser equals the winner
      return a_first;
    }
    if (cmp < 0) {
      cb.ovc = MakeOvc(kw, diff, kb[diff]);
      return true;
    }
    ca.ovc = MakeOvc(kw, diff, ka[diff]);
    return false;
  };

  // tree[n] (1 <= n < leaves) holds the loser leaf of node n's last
  // comparison; initial build plays every node bottom-up.
  std::vector<uint32_t> tree(leaves, 0);
  auto build = [&](auto&& self, uint64_t node) -> uint32_t {
    if (node >= leaves) return static_cast<uint32_t>(node - leaves);
    uint32_t wl = self(self, 2 * node);
    uint32_t wr = self(self, 2 * node + 1);
    if (precedes(wl, wr)) {
      tree[node] = wr;
      return wl;
    }
    tree[node] = wl;
    return wr;
  };
  uint32_t winner = build(build, 1);

  const uint64_t krw = key_row_width_;
  const uint64_t prw = payload_layout_.row_width();
  const bool batch = config_.use_movement_kernels;
  uint64_t bulk_rows = 0;
  // Run-length batching, like MergeSlice: consecutive wins by the same
  // cursor accumulate and flush as one wide memcpy per region. `emitted`
  // counts rows handed to the batcher (flushed + pending).
  const SortedRun* pend_run = nullptr;
  uint64_t pend_begin = 0, pend_len = 0, emitted = 0;
  auto flush_pending = [&]() {
    if (pend_len == 0) return;
    std::memcpy(out.key_rows.data() + (emitted - pend_len) * krw,
                pend_run->KeyRow(pend_begin), pend_len * krw);
    std::memcpy(out.payload.GetRow(emitted - pend_len),
                pend_run->PayloadRow(pend_begin), pend_len * prw);
    if (pend_len > 1) bulk_rows += pend_len;
    pend_len = 0;
  };
  for (uint64_t o = 0; o < total; ++o) {
    if ((o & (kCancelCheckRows - 1)) == 0) cancel_.ThrowIfCancelled();
    Cursor& cw = cursors[winner];
    if (pend_run != cw.run || pend_begin + pend_len != cw.pos) {
      flush_pending();
      pend_run = cw.run;
      pend_begin = cw.pos;
    }
    ++pend_len;
    ++emitted;
    if (!batch) flush_pending();
    if (++cw.pos == cw.run->count) {
      cw.ovc = kOvcExhausted;
    } else {
      cw.ovc = cw.run->ovcs[cw.pos];  // code vs the row just emitted
      if (batch) {
        // The replacement's key is read by the replay comparisons right
        // below; its payload by the streak flush shortly after.
        ROWSORT_PREFETCH_READ(cw.run->KeyRow(cw.pos));
        ROWSORT_PREFETCH_READ(cw.run->PayloadRow(cw.pos));
      }
    }
    // Replay the winner's path; each stored loser's code is relative to the
    // emitted row, like the replacement's.
    uint32_t candidate = winner;
    for (uint64_t node = (leaves + winner) >> 1; node >= 1; node >>= 1) {
      if (precedes(tree[node], candidate)) std::swap(tree[node], candidate);
    }
    winner = candidate;
  }
  flush_pending();
  if (bulk_rows > 0) {
    rows_bulk_copied_.fetch_add(bulk_rows, std::memory_order_relaxed);
  }

  for (auto& run : runs) {
    out.payload.AdoptHeap(std::move(run.payload));
  }
  ovc_decided_.fetch_add(decided, std::memory_order_relaxed);
  ovc_fallback_.fetch_add(fallback, std::memory_order_relaxed);
  if (config_.count_comparisons) {
    merge_compares_.fetch_add(fallback, std::memory_order_relaxed);
  }
  profile_.RecordMergeSlice(timer.ElapsedNanos(), total);
  return out;
}

uint64_t RelationalSort::PlanMergeFanIn(uint64_t input_count) const {
  if (input_count <= 2) return 2;
  // No limit to respect: a single pass over every input touches each spilled
  // row exactly once more (one read), the theoretical minimum.
  if (tracker_.limit() == 0) return input_count;
  // Per spilled input the merge buffers one decoded block, plus the raw
  // readahead block when overlap is on. Half the limit is the merge's input
  // budget; the other half covers the output block, the write-behind double
  // buffer, and whatever resident runs remain.
  // The plan minimizes passes: each extra level rewrites every row once
  // (encode + CRC + write + read + decode), which costs far more than
  // overlapped I/O can win back. So size the fan-in for the inline per-input
  // footprint (one decoded block); whether a given merge can additionally
  // afford readahead buffers is decided per merge by MergeEntryRange's
  // budget gate, which falls back to inline streams when they don't fit.
  const uint64_t block_bytes =
      kDefaultSpillBlockRows * (key_row_width_ + payload_layout_.row_width());
  const uint64_t fan_in =
      (tracker_.limit() / 2) / std::max<uint64_t>(1, block_bytes);
  return std::min(std::max<uint64_t>(fan_in, 2), input_count);
}

Status RelationalSort::MergeEntryRange(uint64_t begin, uint64_t count,
                                       bool to_memory, RunEntry* out,
                                       SortedRun* result) {
  // Spill streams share the sort's retry accounting, token, I/O profile and
  // (with overlap_spill_io) the background worker: transient hiccups heal
  // (SortMetrics::io_retries), cancellation lands between blocks, and every
  // reader keeps one block of readahead in flight while this loop merges.
  TraceSpan span(config_.trace, "merge.external", "merge");
  Timer timer;
  SpillIoOptions io = IoOptions();
  const uint64_t krw = key_row_width_;
  const uint64_t prw = payload_layout_.row_width();
  const uint64_t kw = comparator_.key_width();
  const uint64_t block_rows = kDefaultSpillBlockRows;
  const bool use_ovc = UseOvc();
  const bool batch = config_.use_movement_kernels;

  uint64_t total = 0;
  uint64_t spilled_inputs = 0;
  for (uint64_t i = 0; i < count; ++i) {
    total += entries_[begin + i].rows;
    spilled_inputs += entries_[begin + i].spilled ? 1 : 0;
  }

  // Readahead budget: with overlap each spilled input holds up to three
  // block-sized buffers (decoded + current raw + readahead raw) and the
  // output holds three (output block + double write buffer). When that
  // cannot fit the limit, run this merge's streams inline instead — the
  // readahead budget is charged to the tracker, so it must also respect it.
  // block_bytes is the *decompressed* block size (rows x row widths): the
  // decoded buffer is always that large regardless of on-disk format, and a
  // v3 raw buffer holds the compressed bytes, which (modulo ~70 bytes of
  // framing) never exceed raw — so this gate stays a safe bound with spill
  // compression on, and errs conservative when blocks compress well.
  const uint64_t block_bytes = block_rows * (krw + prw);
  if (io.worker != nullptr && tracker_.limit() != 0 &&
      (spilled_inputs * 3 + 3) * block_bytes > tracker_.limit()) {
    io.worker = nullptr;
  }

  // One cursor per input. Spilled inputs stream block by block; resident
  // inputs are a single "block" (their whole run, codes precomputed at run
  // generation). Offset-value codes for spilled inputs are derived per
  // block: row 0 of a refilled block codes against the last row of the
  // previous block — which is exactly the row this cursor last emitted, so
  // the loser-tree invariant (all codes relative to the last emitted row)
  // survives block boundaries.
  struct StreamCursor {
    const RunEntry* entry = nullptr;
    std::unique_ptr<ExternalRunReader> reader;  // spilled inputs only
    SortedRun block;            // current decoded block (spilled only)
    const SortedRun* cur = nullptr;
    uint64_t pos = 0;
    uint64_t ovc = kOvcExhausted;
    bool exhausted = true;
    bool first_block = true;
    std::vector<uint8_t> prev_last_key;  // OVC chaining across blocks
  };

  // Leaves padded to a power of two; virtual leaves are exhausted cursors
  // (same shape as MergeKWayLoserTree).
  uint64_t leaves = 1;
  while (leaves < count || leaves < 2) leaves <<= 1;
  std::vector<StreamCursor> cursors(leaves);

  uint64_t null_mask = 0;
  auto refill = [&](StreamCursor& c) -> Status {
    if (use_ovc && c.block.count > 0) {
      const uint8_t* last = c.block.KeyRow(c.block.count - 1);
      c.prev_last_key.assign(last, last + krw);
    }
    ROWSORT_RETURN_NOT_OK(c.reader->ReadBlock(&c.block));
    c.pos = 0;
    if (c.block.count == 0) {
      c.exhausted = true;
      c.ovc = kOvcExhausted;
      return Status::OK();
    }
    null_mask |= c.block.payload.maybe_null_mask();
    if (use_ovc) {
      c.block.ovcs = DeriveRunOvcs(c.block, kw);
      if (!c.first_block) {
        c.block.ovcs[0] =
            DeriveSuccessorOvc(c.prev_last_key.data(), c.block.KeyRow(0), kw);
      }
      c.ovc = c.block.ovcs[0];
    }
    c.first_block = false;
    c.exhausted = false;
    return Status::OK();
  };

  // Bounded scratch for the decoded input blocks (one per spilled input)
  // and the output block; the raw readahead and write-behind buffers charge
  // themselves through SpillIoOptions::buffer_tracker.
  MemoryReservation scratch;
  scratch.Reset(&tracker_, (spilled_inputs + (to_memory ? 0 : 1)) *
                               block_rows * (krw + prw));

  for (uint64_t i = 0; i < count; ++i) {
    StreamCursor& c = cursors[i];
    c.entry = &entries_[begin + i];
    if (c.entry->spilled) {
      c.reader =
          std::make_unique<ExternalRunReader>(payload_layout_, c.entry->path);
      c.reader->SetIoOptions(io);
      ROWSORT_RETURN_NOT_OK(c.reader->Open());
      c.cur = &c.block;
      ROWSORT_RETURN_NOT_OK(refill(c));
    } else {
      c.cur = &c.entry->run;
      c.first_block = false;
      null_mask |= c.entry->run.payload.maybe_null_mask();
      if (c.entry->run.count > 0) {
        c.exhausted = false;
        if (use_ovc) {
          ROWSORT_DASSERT(c.entry->run.ovcs.size() == c.entry->run.count);
          c.ovc = c.entry->run.ovcs[0];  // code vs the -inf base
        }
      }
    }
  }

  // Output side: either the caller's in-memory result (pre-sized, adopted
  // heaps — not charged against the limit, see docs/robustness.md) or a
  // bounded output block streamed through the write-behind writer.
  std::unique_ptr<ExternalRunWriter> writer;
  SortedRun out_block;
  uint64_t out_pos = 0;  // fill level of *result (to_memory mode)
  if (to_memory) {
    *result = SortedRun();
    result->key_row_width = krw;
    result->payload = RowCollection(payload_layout_);
    result->count = total;
    result->key_rows.resize(total * krw);
    result->payload.AppendUninitialized(total);
  } else {
    {
      std::lock_guard<std::mutex> lock(runs_mutex_);
      ROWSORT_RETURN_NOT_OK(EnsureSpillDirLocked());
      out->path = NextSpillPathLocked();
    }
    writer = std::make_unique<ExternalRunWriter>(payload_layout_, out->path);
    writer->SetIoOptions(io);
    ROWSORT_RETURN_NOT_OK(writer->Open(krw));
    out_block.key_row_width = krw;
    out_block.key_rows.resize(block_rows * krw);
    out_block.payload = RowCollection(payload_layout_);
    out_block.payload.AppendUninitialized(block_rows);
    out_block.count = 0;  // fill level
  }

  uint64_t bulk_rows = 0;
  auto flush_out_block = [&]() -> Status {
    // Runs at least once per block_rows appended rows, so it doubles as a
    // cooperative cancellation point of the file-output path.
    ROWSORT_RETURN_NOT_OK(cancel_.CheckStatus());
    if (out_block.count == 0) return Status::OK();
    ROWSORT_RETURN_NOT_OK(writer->WriteSlice(out_block, 0, out_block.count));
    out_block.count = 0;
    return Status::OK();
  };
  // Appends rows [from, from + n) of \p src to the output with one wide
  // memcpy per region, splitting at block-flush boundaries in file mode.
  auto append_range = [&](const SortedRun& src, uint64_t from,
                          uint64_t n) -> Status {
    if (n > 1) bulk_rows += n;
    if (to_memory) {
      std::memcpy(result->key_rows.data() + out_pos * krw, src.KeyRow(from),
                  n * krw);
      std::memcpy(result->payload.GetRow(out_pos), src.PayloadRow(from),
                  n * prw);
      out_pos += n;
      return Status::OK();
    }
    while (n > 0) {
      const uint64_t take = std::min(n, block_rows - out_block.count);
      const uint64_t o = out_block.count;
      std::memcpy(out_block.key_rows.data() + o * krw, src.KeyRow(from),
                  take * krw);
      std::memcpy(out_block.payload.GetRow(o), src.PayloadRow(from),
                  take * prw);
      out_block.count += take;
      from += take;
      n -= take;
      if (out_block.count == block_rows) {
        ROWSORT_RETURN_NOT_OK(flush_out_block());
      }
    }
    return Status::OK();
  };
  // Run-length batching like MergeSlice: the pending streak ranges over the
  // winning cursor's *current block* and must flush before that block is
  // replaced (its string descriptors point into the block's heap).
  StreamCursor* pend = nullptr;
  uint64_t pend_begin = 0, pend_len = 0;
  auto flush_pending = [&]() -> Status {
    if (pend_len == 0) return Status::OK();
    const uint64_t len = pend_len;
    pend_len = 0;
    return append_range(*pend->cur, pend_begin, len);
  };

  uint64_t decided = 0, fallback = 0, compares = 0;
  // True iff leaf a's key precedes leaf b's; code-first with incremental
  // repair when OVC applies (see MergeKWayLoserTree), full comparator with
  // stable lower-index tie-break otherwise.
  auto precedes = [&](uint32_t a, uint32_t b) -> bool {
    StreamCursor& ca = cursors[a];
    StreamCursor& cb = cursors[b];
    if (ca.exhausted || cb.exhausted) return !ca.exhausted;
    if (use_ovc) {
      if (ca.ovc != cb.ovc) {
        ++decided;
        return ca.ovc < cb.ovc;
      }
      if (ca.ovc == kOvcEqual) {
        ++decided;
        return a < b;  // both equal the emitted base row: stable tie-break
      }
      const uint8_t* ka = ca.cur->KeyRow(ca.pos);
      const uint8_t* kb = cb.cur->KeyRow(cb.pos);
      uint64_t suffix = OvcDiffIndex(kw, ca.ovc) + 1;
      uint64_t diff = 0;
      ++fallback;
      int cmp =
          suffix >= kw ? 0 : CompareKeySuffix(ka, kb, suffix, kw, &diff);
      if (cmp == 0) {
        bool a_first = a < b;
        (a_first ? cb : ca).ovc = kOvcEqual;  // loser equals the winner
        return a_first;
      }
      if (cmp < 0) {
        cb.ovc = MakeOvc(kw, diff, kb[diff]);
        return true;
      }
      ca.ovc = MakeOvc(kw, diff, ka[diff]);
      return false;
    }
    ++compares;
    int cmp =
        comparator_.Compare(ca.cur->KeyRow(ca.pos), ca.cur->PayloadRow(ca.pos),
                            cb.cur->KeyRow(cb.pos), cb.cur->PayloadRow(cb.pos));
    if (cmp == 0) return a < b;
    return cmp < 0;
  };

  std::vector<uint32_t> tree(leaves, 0);
  auto build = [&](auto&& self, uint64_t node) -> uint32_t {
    if (node >= leaves) return static_cast<uint32_t>(node - leaves);
    uint32_t wl = self(self, 2 * node);
    uint32_t wr = self(self, 2 * node + 1);
    if (precedes(wl, wr)) {
      tree[node] = wr;
      return wl;
    }
    tree[node] = wl;
    return wr;
  };
  uint32_t winner = build(build, 1);

  for (uint64_t o = 0; o < total; ++o) {
    if ((o & (kCancelCheckRows - 1)) == 0) cancel_.ThrowIfCancelled();
    StreamCursor& cw = cursors[winner];
    if (pend != &cw || pend_begin + pend_len != cw.pos) {
      ROWSORT_RETURN_NOT_OK(flush_pending());
      pend = &cw;
      pend_begin = cw.pos;
    }
    ++pend_len;
    if (!batch) ROWSORT_RETURN_NOT_OK(flush_pending());
    if (++cw.pos == cw.cur->count) {
      if (cw.reader != nullptr) {
        // Block exhausted: the pending streak and (file mode) the output
        // block still reference this block's memory — flush them, bank the
        // block's string heap (memory mode), then replace the block.
        ROWSORT_RETURN_NOT_OK(flush_pending());
        if (to_memory) {
          result->payload.AdoptHeap(std::move(cw.block.payload));
        } else {
          ROWSORT_RETURN_NOT_OK(flush_out_block());
        }
        if (cw.reader->rows_read() < cw.reader->row_count()) {
          ROWSORT_RETURN_NOT_OK(refill(cw));
        } else {
          cw.exhausted = true;
          cw.ovc = kOvcExhausted;
        }
      } else {
        cw.exhausted = true;
        cw.ovc = kOvcExhausted;
      }
    } else {
      if (use_ovc) cw.ovc = cw.cur->ovcs[cw.pos];  // vs the row just emitted
      if (batch) {
        ROWSORT_PREFETCH_READ(cw.cur->KeyRow(cw.pos));
        ROWSORT_PREFETCH_READ(cw.cur->PayloadRow(cw.pos));
      }
    }
    // Replay the winner's path; each stored loser's code is relative to the
    // emitted row, like the replacement's.
    uint32_t candidate = winner;
    for (uint64_t node = (leaves + winner) >> 1; node >= 1; node >>= 1) {
      if (precedes(tree[node], candidate)) std::swap(tree[node], candidate);
    }
    winner = candidate;
  }
  ROWSORT_RETURN_NOT_OK(flush_pending());

  if (to_memory) {
    // Adopt the resident inputs' string heaps (their descriptors were
    // copied verbatim); exhausted spilled blocks banked theirs above.
    for (uint64_t i = 0; i < count; ++i) {
      if (cursors[i].reader == nullptr && cursors[i].entry != nullptr) {
        result->payload.AdoptHeap(
            std::move(entries_[begin + i].run.payload));
      }
    }
    result->payload.SetMaybeNullMask(null_mask);
  } else {
    ROWSORT_RETURN_NOT_OK(flush_out_block());
    ROWSORT_RETURN_NOT_OK(writer->Finish());
  }

  if (bulk_rows > 0) {
    rows_bulk_copied_.fetch_add(bulk_rows, std::memory_order_relaxed);
  }
  ovc_decided_.fetch_add(decided, std::memory_order_relaxed);
  ovc_fallback_.fetch_add(fallback, std::memory_order_relaxed);
  if (config_.count_comparisons) {
    merge_compares_.fetch_add(use_ovc ? fallback : compares,
                              std::memory_order_relaxed);
  }
  profile_.RecordMergeSlice(timer.ElapsedNanos(), total);

  // Release every consumed input *now* — resident memory freed, spill files
  // deleted — so peak disk stays at most input plus one output level even
  // through a multi-level plan.
  for (uint64_t i = 0; i < count; ++i) {
    RunEntry& e = entries_[begin + i];
    if (e.spilled) {
      std::remove(e.path.c_str());
      e.path.clear();
      e.spilled = false;
    }
    e.run = SortedRun();
  }
  if (!to_memory) {
    out->rows = total;
    out->spilled = true;
    metrics_.runs_spilled += 1;
  }
  return Status::OK();
}

Status RelationalSort::Finalize(ThreadPool* pool) {
  TraceScopeGuard scope(trace_scope_);
  ROWSORT_RETURN_NOT_OK(status());
  Status st;
  try {
    st = FinalizeImpl(pool);
  } catch (const CancelledError& e) {
    st = e.ToStatus();
  } catch (const std::bad_alloc&) {
    st = Status::OutOfMemory("sort merge: allocation failed");
  }
  metrics_.peak_memory_bytes = tracker_.peak();
  metrics_.io_retries = io_retry_stats_.count();
  metrics_.cancel_checks = cancel_.checks();
  metrics_.time_to_cancel_us = cancel_.time_to_cancel_us();
  Status out = RecordError(std::move(st));
  // Success skips RecordError's fold; rebuild the profile's derived nodes
  // here either way (idempotent).
  FoldRuntimeIntoProfile();
  return out;
}

Status RelationalSort::FinalizeImpl(ThreadPool* pool) {
  ROWSORT_RETURN_NOT_OK(cancel_.CheckStatus());
  {
    // The merge phase reads entries_ without the lock from here on; the
    // latch makes SpillResidentBytes decline instead of racing it.
    std::lock_guard<std::mutex> lock(runs_mutex_);
    merge_active_ = true;
  }
  profile_.EnterPhase(SortPhase::kMerge);
  TraceSpan merge_span(config_.trace, "merge.phase", "merge");
  Timer timer;
  metrics_.run_generation_compares =
      run_compares_.load(std::memory_order_relaxed);
  auto finish_metrics = [&] {
    metrics_.merge_seconds += timer.ElapsedSeconds();
    metrics_.merge_compares = merge_compares_.load(std::memory_order_relaxed);
    metrics_.ovc_decided = ovc_decided_.load(std::memory_order_relaxed);
    metrics_.ovc_fallback_compares =
        ovc_fallback_.load(std::memory_order_relaxed);
    metrics_.rows_bulk_copied =
        rows_bulk_copied_.load(std::memory_order_relaxed);
    metrics_.gather_fast_path =
        kernel_stats_.gather_fast_path.load(std::memory_order_relaxed);
    metrics_.scatter_fast_path =
        kernel_stats_.scatter_fast_path.load(std::memory_order_relaxed);
  };

  if (entries_.empty()) {
    result_ = SortedRun();
    result_.key_row_width = key_row_width_;
    result_.payload = RowCollection(payload_layout_);
    finish_metrics();
    profile_.EnterPhase(SortPhase::kDone);
    return Status::OK();
  }

  bool any_spilled = false;
  for (const auto& entry : entries_) any_spilled |= entry.spilled;

  if (!any_spilled && tracker_.limit() == 0) {
    // Everything resident and no limit to respect: the fast merge phase.
    std::vector<SortedRun> current;
    current.reserve(entries_.size());
    for (auto& entry : entries_) current.push_back(std::move(entry.run));
    entries_.clear();

    if (config_.use_kway_merge) {
      // Merge-strategy ablation: one k-way pass (ClickHouse/HyPer style).
      const uint64_t kway_inputs = current.size();
      metrics_.merge_fan_in = kway_inputs;
      result_ = MergeKWay(current);
      profile_.SetMergeRound(1, kway_inputs, result_.count,
                             timer.ElapsedSeconds());
    } else {
      // 2-way cascaded merge sort: trivially parallel across pairs while
      // many runs remain; Merge Path parallelizes within pairs as runs get
      // large.
      metrics_.merge_fan_in = current.size() > 1 ? 2 : 1;
      uint64_t round = 0;
      while (current.size() > 1) {
        ++round;
        Timer round_timer;
        std::vector<SortedRun> next((current.size() + 1) / 2);
        if (pool != nullptr && current.size() >= 4) {
          std::vector<std::function<void()>> tasks;
          for (uint64_t p = 0; p + 1 < current.size(); p += 2) {
            tasks.push_back([this, &current, &next, p] {
              // Many pairs: no intra-pair partitioning needed yet.
              next[p / 2] = MergePair(current[p], current[p + 1], nullptr);
            });
          }
          // Token to the pool so queued pair merges are skipped once
          // cancelled; the check right after surfaces the skip as an unwind
          // (see MergePair).
          pool->RunBatch(std::move(tasks), config_.cancellation);
          cancel_.ThrowIfCancelled();
        } else {
          for (uint64_t p = 0; p + 1 < current.size(); p += 2) {
            next[p / 2] = MergePair(current[p], current[p + 1], pool);
          }
        }
        // Adopt string heaps of merged inputs so descriptors stay valid.
        for (uint64_t p = 0; p + 1 < current.size(); p += 2) {
          next[p / 2].payload.AdoptHeap(std::move(current[p].payload));
          next[p / 2].payload.AdoptHeap(std::move(current[p + 1].payload));
        }
        if (current.size() % 2 == 1) {
          next.back() = std::move(current.back());
        }
        uint64_t merged_rows = 0;
        for (uint64_t p = 0; p + 1 < current.size(); p += 2) {
          merged_rows += next[p / 2].count;
        }
        profile_.SetMergeRound(round, current.size() / 2, merged_rows,
                               round_timer.ElapsedSeconds());
        current = std::move(next);
      }
      result_ = std::move(current.front());
    }
    result_.TrackMemory(nullptr);
    finish_metrics();
    profile_.EnterPhase(SortPhase::kDone);
    return Status::OK();
  }

  // Governed / external merge with planned fan-in (docs/external_sort.md).
  // Instead of a pairwise cascade that rewrites every spilled row O(log n)
  // times, the planner picks the widest fan-in the memory budget allows and
  // merges all inputs through one loser tree per pass — most spilled inputs
  // take exactly one extra read/write pass. When the run count exceeds the
  // fan-in, intermediate passes fold the cheapest *contiguous* window of
  // entries into one spilled run first; contiguity preserves the stable
  // lower-index-wins order, so a memory-limited sort still produces the
  // exact byte sequence an unlimited one does.
  (void)pool;  // the streaming merge is single-pass serial by design
  if (entries_.size() == 1) {
    metrics_.merge_fan_in = 1;
    RunEntry& last = entries_.front();
    if (last.spilled) {
      // The final result is handed to the caller and intentionally not
      // charged against the limit (the limit governs the sort's internal
      // working set; see docs/robustness.md).
      auto loaded = ReadRunFromFile(payload_layout_, last.path, IoOptions());
      if (!loaded.ok()) {
        finish_metrics();
        return loaded.status();
      }
      std::remove(last.path.c_str());
      result_ = std::move(loaded.value());
    } else {
      result_ = std::move(last.run);
    }
    entries_.clear();
    result_.TrackMemory(nullptr);
    finish_metrics();
    profile_.EnterPhase(SortPhase::kDone);
    return Status::OK();
  }

  const uint64_t fan_in = PlanMergeFanIn(entries_.size());
  uint64_t round = 0;
  while (entries_.size() > fan_in) {
    ++round;
    Timer round_timer;
    // Merging `width` entries reduces the count by width - 1; never merge
    // more than needed to land exactly on the final fan-in.
    const uint64_t width = std::min(fan_in, entries_.size() - fan_in + 1);
    // Cheapest contiguous window: fewest rows rewritten this level.
    uint64_t window_rows = 0;
    for (uint64_t i = 0; i < width; ++i) window_rows += entries_[i].rows;
    uint64_t best_begin = 0, best_rows = window_rows;
    for (uint64_t i = 1; i + width <= entries_.size(); ++i) {
      window_rows += entries_[i + width - 1].rows - entries_[i - 1].rows;
      if (window_rows < best_rows) {
        best_rows = window_rows;
        best_begin = i;
      }
    }
    RunEntry merged;
    Status st;
    try {
      st = MergeEntryRange(best_begin, width, /*to_memory=*/false, &merged,
                           nullptr);
    } catch (const CancelledError& e) {
      st = e.ToStatus();
    } catch (const std::bad_alloc&) {
      st = Status::OutOfMemory("sort merge: allocation failed");
    }
    if (!st.ok()) {
      // Register the output if it survived so the destructor still removes
      // every spill file (the unconsumed inputs are still registered).
      if (merged.spilled) entries_.push_back(std::move(merged));
      finish_metrics();
      return st;
    }
    entries_.erase(entries_.begin() + best_begin,
                   entries_.begin() + best_begin + width);
    entries_.insert(entries_.begin() + best_begin, std::move(merged));
    profile_.SetMergeRound(round, 1, best_rows, round_timer.ElapsedSeconds());
  }

  // Final pass: every remaining input through one loser tree, streamed
  // straight into the in-memory result.
  ++round;
  Timer final_timer;
  metrics_.merge_fan_in = entries_.size();
  Status st;
  try {
    st = MergeEntryRange(0, entries_.size(), /*to_memory=*/true, nullptr,
                         &result_);
  } catch (const CancelledError& e) {
    st = e.ToStatus();
  } catch (const std::bad_alloc&) {
    st = Status::OutOfMemory("sort merge: allocation failed");
  }
  if (!st.ok()) {
    finish_metrics();
    return st;
  }
  profile_.SetMergeRound(round, 1, result_.count,
                         final_timer.ElapsedSeconds());
  entries_.clear();
  result_.TrackMemory(nullptr);
  finish_metrics();
  profile_.EnterPhase(SortPhase::kDone);
  return Status::OK();
}

uint64_t RelationalSort::ScanChunk(uint64_t start, DataChunk* out) const {
  if (start >= result_.count) {
    out->SetSize(0);
    return 0;
  }
  uint64_t count = std::min(out->capacity(), result_.count - start);
  result_.payload.GatherChunk(start, count, out, &kernel_stats_);
  return count;
}

StatusOr<Table> RelationalSort::SortTable(const Table& input,
                                          const SortSpec& spec,
                                          const SortEngineConfig& config,
                                          SortMetrics* metrics_out,
                                          SortProfile* profile_out) {
  if (metrics_out != nullptr) metrics_out->Reset();
  RelationalSort sort(spec, input.types(), config);
  uint64_t threads = std::max<uint64_t>(config.threads, 1);
  // Fills the caller's outputs; used on every exit path so metrics and a
  // (possibly partial) profile survive errors and cancellation.
  auto fill_outputs = [&] {
    // Folding first refreshes the data-movement counters (the scan-time
    // gathers in particular) into the metrics before they are copied out.
    sort.FoldRuntimeIntoProfile();
    if (metrics_out != nullptr) *metrics_out = sort.metrics();
    if (profile_out != nullptr) profile_out->CopyFrom(sort.profile_);
  };

  Status st;
  if (threads <= 1) {
    auto local = sort.MakeLocalState();
    for (uint64_t c = 0; c < input.ChunkCount() && st.ok(); ++c) {
      st = sort.Sink(*local, input.chunk(c));
    }
    if (st.ok()) st = sort.CombineLocal(*local);
    if (st.ok()) st = sort.Finalize(nullptr);
  } else {
    ThreadPool pool(threads);
    // Pool observability is opt-in: timing every task costs two clock reads,
    // so it stays off unless the caller asked for a profile or a trace.
    if (profile_out != nullptr) pool.EnableStats(true);
    if (config.trace != nullptr) pool.SetTracer(config.trace);
    // Folds the pool's counters into the profile before the pool goes out
    // of scope (FoldPool is assignment-style, safe to call once per pool).
    auto fold_pool = [&] {
      if (profile_out != nullptr) sort.profile_.FoldPool(pool.StatsSnapshot());
    };
    // Morsel-driven: threads grab chunks from a shared counter (§VII /
    // Leis et al.), each filling its own local state.
    std::atomic<uint64_t> next_chunk{0};
    std::vector<std::function<void()>> tasks;
    for (uint64_t t = 0; t < threads; ++t) {
      tasks.push_back([&sort, &input, &next_chunk] {
        auto local = sort.MakeLocalState();
        while (true) {
          uint64_t c = next_chunk.fetch_add(1);
          if (c >= input.ChunkCount()) break;
          // A failure is sticky in the sort; stop feeding it.
          if (!sort.Sink(*local, input.chunk(c)).ok()) break;
        }
        (void)sort.CombineLocal(*local);  // its status is recorded in the sort
      });
    }
    try {
      // Sink tasks record their own failures in the sort; the token lets
      // the pool skip workers that have not started yet once cancelled.
      pool.RunBatch(std::move(tasks), config.cancellation);
    } catch (const CancelledError& e) {
      fold_pool();
      fill_outputs();
      return e.ToStatus();
    } catch (const std::bad_alloc&) {
      fold_pool();
      fill_outputs();
      return Status::OutOfMemory("sort sink: allocation failed");
    }
    st = sort.status();
    if (st.ok()) st = sort.Finalize(&pool);
    fold_pool();
  }
  if (!st.ok()) {
    fill_outputs();
    return st;
  }

  try {
    Table output(input.types(), input.names());
    uint64_t offset = 0;
    while (offset < sort.row_count()) {
      DataChunk chunk = output.NewChunk();
      uint64_t produced = sort.ScanChunk(offset, &chunk);
      offset += produced;
      output.Append(std::move(chunk));
    }
    fill_outputs();
    return output;
  } catch (const std::bad_alloc&) {
    fill_outputs();
    return Status::OutOfMemory("sort output: allocation failed");
  }
}

}  // namespace rowsort
