// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>
#include <string>

namespace rowsort {

/// Logical column types supported by the execution substrate.
///
/// This is the set exercised by the paper: fixed-width integers of several
/// sizes, IEEE floats (Fig. 12 sorts integers and floats), DATE-like values
/// (the customer-table benchmark sorts birth year/month/day), and VARCHAR
/// (the customer-table benchmark sorts names; Fig. 7 normalizes a VARCHAR).
enum class TypeId : uint8_t {
  kInvalid = 0,
  kBool,
  kInt8,
  kInt16,
  kInt32,
  kInt64,
  kUint32,
  kUint64,
  kFloat,
  kDouble,
  kDate,     ///< days since epoch, stored as int32
  kVarchar,  ///< variable-size UTF-8 string
};

/// \brief A logical column type.
///
/// Kept as a tiny value class so that richer types (decimal precision,
/// collations) can be added without changing call sites.
class LogicalType {
 public:
  /*implicit*/ constexpr LogicalType(TypeId id = TypeId::kInvalid) : id_(id) {}

  constexpr TypeId id() const { return id_; }

  /// Width in bytes of the in-memory (DSM vector / NSM row) representation.
  /// VARCHAR values are represented by a fixed-size string_t descriptor.
  int FixedSize() const;

  /// True for VARCHAR: the value payload lives outside the row/vector slot.
  bool IsVariableSize() const { return id_ == TypeId::kVarchar; }

  /// True for all numeric (integer and floating point) types.
  bool IsNumeric() const;

  /// Lowercase SQL-ish name, e.g. "int32", "varchar".
  std::string ToString() const;

  bool operator==(const LogicalType& other) const { return id_ == other.id_; }
  bool operator!=(const LogicalType& other) const { return id_ != other.id_; }

 private:
  TypeId id_;
};

}  // namespace rowsort
