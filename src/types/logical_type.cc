// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "types/logical_type.h"

#include "common/macros.h"
#include "types/string_t.h"

namespace rowsort {

int LogicalType::FixedSize() const {
  switch (id_) {
    case TypeId::kBool:
    case TypeId::kInt8:
      return 1;
    case TypeId::kInt16:
      return 2;
    case TypeId::kInt32:
    case TypeId::kUint32:
    case TypeId::kFloat:
    case TypeId::kDate:
      return 4;
    case TypeId::kInt64:
    case TypeId::kUint64:
    case TypeId::kDouble:
      return 8;
    case TypeId::kVarchar:
      return sizeof(string_t);
    case TypeId::kInvalid:
      break;
  }
  ROWSORT_ASSERT(false && "FixedSize of invalid type");
  return 0;
}

bool LogicalType::IsNumeric() const {
  switch (id_) {
    case TypeId::kInt8:
    case TypeId::kInt16:
    case TypeId::kInt32:
    case TypeId::kInt64:
    case TypeId::kUint32:
    case TypeId::kUint64:
    case TypeId::kFloat:
    case TypeId::kDouble:
      return true;
    default:
      return false;
  }
}

std::string LogicalType::ToString() const {
  switch (id_) {
    case TypeId::kInvalid:
      return "invalid";
    case TypeId::kBool:
      return "bool";
    case TypeId::kInt8:
      return "int8";
    case TypeId::kInt16:
      return "int16";
    case TypeId::kInt32:
      return "int32";
    case TypeId::kInt64:
      return "int64";
    case TypeId::kUint32:
      return "uint32";
    case TypeId::kUint64:
      return "uint64";
    case TypeId::kFloat:
      return "float";
    case TypeId::kDouble:
      return "double";
    case TypeId::kDate:
      return "date";
    case TypeId::kVarchar:
      return "varchar";
  }
  return "unknown";
}

}  // namespace rowsort
