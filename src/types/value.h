// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>
#include <string>

#include "types/logical_type.h"

namespace rowsort {

/// \brief A single typed value, possibly NULL.
///
/// Values are the slow, convenient currency of tests, examples, and result
/// verification; hot paths operate on vectors and rows directly.
class Value {
 public:
  /// A NULL of the given type.
  explicit Value(LogicalType type = TypeId::kInvalid)
      : type_(type), is_null_(true) {}

  static Value Bool(bool v);
  static Value Int8(int8_t v);
  static Value Int16(int16_t v);
  static Value Int32(int32_t v);
  static Value Int64(int64_t v);
  static Value Uint32(uint32_t v);
  static Value Uint64(uint64_t v);
  static Value Float(float v);
  static Value Double(double v);
  static Value Date(int32_t days_since_epoch);
  static Value Varchar(std::string v);
  static Value Null(LogicalType type) { return Value(type); }

  const LogicalType& type() const { return type_; }
  bool is_null() const { return is_null_; }

  bool bool_value() const;
  int8_t int8_value() const;
  int16_t int16_value() const;
  int32_t int32_value() const;
  int64_t int64_value() const;
  uint32_t uint32_value() const;
  uint64_t uint64_value() const;
  float float_value() const;
  double double_value() const;
  const std::string& varchar_value() const;

  /// Three-way comparison following SQL ORDER BY semantics with NULLs treated
  /// as greater than every non-NULL (the caller applies NULLS FIRST/LAST and
  /// ASC/DESC on top). Requires identical types.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const;
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Human-readable rendering, "NULL" for nulls.
  std::string ToString() const;

 private:
  LogicalType type_;
  bool is_null_ = true;
  union {
    bool boolean;
    int8_t i8;
    int16_t i16;
    int32_t i32;
    int64_t i64;
    uint32_t u32;
    uint64_t u64;
    float f32;
    double f64;
  } data_ = {};
  std::string str_;
};

}  // namespace rowsort
