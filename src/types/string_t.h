// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/macros.h"

namespace rowsort {

/// \brief Fixed-size (16-byte) VARCHAR descriptor with a 12-byte inline
/// prefix, in the style of Umbra/DuckDB "German strings".
///
/// Strings up to 12 bytes are stored entirely inline. Longer strings store a
/// 4-byte prefix inline plus a pointer into a StringHeap. Keeping the
/// descriptor fixed-size is what lets VARCHAR columns participate in the
/// fixed-size NSM row layout (paper §VII: "The rows have a fixed size:
/// Variable-sized types like strings are stored separately").
struct string_t {
  static constexpr uint32_t kInlineLength = 12;
  static constexpr uint32_t kPrefixLength = 4;

  string_t() : string_t("", 0) {}

  /// Wraps external storage; \p data must outlive the descriptor unless the
  /// string fits inline (it is then copied).
  string_t(const char* data, uint32_t size) {
    value.pointer.length = size;
    if (size <= kInlineLength) {
      std::memset(value.inlined.inlined, 0, kInlineLength);
      if (size > 0) std::memcpy(value.inlined.inlined, data, size);
    } else {
      std::memcpy(value.pointer.prefix, data, kPrefixLength);
      value.pointer.ptr = data;
    }
  }

  /*implicit*/ string_t(std::string_view view)
      : string_t(view.data(), static_cast<uint32_t>(view.size())) {}

  uint32_t size() const { return value.pointer.length; }
  bool IsInlined() const { return size() <= kInlineLength; }

  /// Pointer to the character data (inline buffer or heap).
  const char* data() const {
    return IsInlined() ? value.inlined.inlined : value.pointer.ptr;
  }

  std::string_view View() const { return {data(), size()}; }
  std::string ToString() const { return std::string(data(), size()); }

  /// Lexicographic byte comparison (memcmp semantics, shorter-is-smaller on
  /// equal prefixes). This matches BINARY collation.
  int Compare(const string_t& other) const {
    uint32_t min_size = size() < other.size() ? size() : other.size();
    int cmp = std::memcmp(data(), other.data(), min_size);
    if (cmp != 0) return cmp;
    if (size() == other.size()) return 0;
    return size() < other.size() ? -1 : 1;
  }

  bool operator==(const string_t& other) const { return Compare(other) == 0; }
  bool operator<(const string_t& other) const { return Compare(other) < 0; }

  union {
    struct {
      uint32_t length;
      char prefix[kPrefixLength];
      const char* ptr;
    } pointer;
    struct {
      uint32_t length;
      char inlined[kInlineLength];
    } inlined;
  } value;
};

static_assert(sizeof(string_t) == 16, "string_t must be 16 bytes");

}  // namespace rowsort
