// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "types/value.h"

#include <cmath>

#include "common/macros.h"
#include "common/string_util.h"

namespace rowsort {

Value Value::Bool(bool v) {
  Value value(TypeId::kBool);
  value.is_null_ = false;
  value.data_.boolean = v;
  return value;
}
Value Value::Int8(int8_t v) {
  Value value(TypeId::kInt8);
  value.is_null_ = false;
  value.data_.i8 = v;
  return value;
}
Value Value::Int16(int16_t v) {
  Value value(TypeId::kInt16);
  value.is_null_ = false;
  value.data_.i16 = v;
  return value;
}
Value Value::Int32(int32_t v) {
  Value value(TypeId::kInt32);
  value.is_null_ = false;
  value.data_.i32 = v;
  return value;
}
Value Value::Int64(int64_t v) {
  Value value(TypeId::kInt64);
  value.is_null_ = false;
  value.data_.i64 = v;
  return value;
}
Value Value::Uint32(uint32_t v) {
  Value value(TypeId::kUint32);
  value.is_null_ = false;
  value.data_.u32 = v;
  return value;
}
Value Value::Uint64(uint64_t v) {
  Value value(TypeId::kUint64);
  value.is_null_ = false;
  value.data_.u64 = v;
  return value;
}
Value Value::Float(float v) {
  Value value(TypeId::kFloat);
  value.is_null_ = false;
  value.data_.f32 = v;
  return value;
}
Value Value::Double(double v) {
  Value value(TypeId::kDouble);
  value.is_null_ = false;
  value.data_.f64 = v;
  return value;
}
Value Value::Date(int32_t days_since_epoch) {
  Value value(TypeId::kDate);
  value.is_null_ = false;
  value.data_.i32 = days_since_epoch;
  return value;
}
Value Value::Varchar(std::string v) {
  Value value(TypeId::kVarchar);
  value.is_null_ = false;
  value.str_ = std::move(v);
  return value;
}

bool Value::bool_value() const {
  ROWSORT_ASSERT(type_.id() == TypeId::kBool && !is_null_);
  return data_.boolean;
}
int8_t Value::int8_value() const {
  ROWSORT_ASSERT(type_.id() == TypeId::kInt8 && !is_null_);
  return data_.i8;
}
int16_t Value::int16_value() const {
  ROWSORT_ASSERT(type_.id() == TypeId::kInt16 && !is_null_);
  return data_.i16;
}
int32_t Value::int32_value() const {
  ROWSORT_ASSERT(
      (type_.id() == TypeId::kInt32 || type_.id() == TypeId::kDate) &&
      !is_null_);
  return data_.i32;
}
int64_t Value::int64_value() const {
  ROWSORT_ASSERT(type_.id() == TypeId::kInt64 && !is_null_);
  return data_.i64;
}
uint32_t Value::uint32_value() const {
  ROWSORT_ASSERT(type_.id() == TypeId::kUint32 && !is_null_);
  return data_.u32;
}
uint64_t Value::uint64_value() const {
  ROWSORT_ASSERT(type_.id() == TypeId::kUint64 && !is_null_);
  return data_.u64;
}
float Value::float_value() const {
  ROWSORT_ASSERT(type_.id() == TypeId::kFloat && !is_null_);
  return data_.f32;
}
double Value::double_value() const {
  ROWSORT_ASSERT(type_.id() == TypeId::kDouble && !is_null_);
  return data_.f64;
}
const std::string& Value::varchar_value() const {
  ROWSORT_ASSERT(type_.id() == TypeId::kVarchar && !is_null_);
  return str_;
}

namespace {
template <typename T>
int Cmp(T a, T b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

// Total order over floats: -inf < finite < +inf < NaN, matching the
// normalized-key encoding (NaN sorts last among non-NULLs).
template <typename T>
int CmpFloat(T a, T b) {
  bool a_nan = std::isnan(a);
  bool b_nan = std::isnan(b);
  if (a_nan || b_nan) {
    if (a_nan && b_nan) return 0;
    return a_nan ? 1 : -1;
  }
  return Cmp(a, b);
}
}  // namespace

int Value::Compare(const Value& other) const {
  ROWSORT_ASSERT(type_ == other.type_);
  if (is_null_ || other.is_null_) {
    if (is_null_ && other.is_null_) return 0;
    return is_null_ ? 1 : -1;
  }
  switch (type_.id()) {
    case TypeId::kBool:
      return Cmp(data_.boolean, other.data_.boolean);
    case TypeId::kInt8:
      return Cmp(data_.i8, other.data_.i8);
    case TypeId::kInt16:
      return Cmp(data_.i16, other.data_.i16);
    case TypeId::kInt32:
    case TypeId::kDate:
      return Cmp(data_.i32, other.data_.i32);
    case TypeId::kInt64:
      return Cmp(data_.i64, other.data_.i64);
    case TypeId::kUint32:
      return Cmp(data_.u32, other.data_.u32);
    case TypeId::kUint64:
      return Cmp(data_.u64, other.data_.u64);
    case TypeId::kFloat:
      return CmpFloat(data_.f32, other.data_.f32);
    case TypeId::kDouble:
      return CmpFloat(data_.f64, other.data_.f64);
    case TypeId::kVarchar:
      return Cmp(str_.compare(other.str_), 0) == 0
                 ? 0
                 : (str_.compare(other.str_) < 0 ? -1 : 1);
    case TypeId::kInvalid:
      break;
  }
  ROWSORT_ASSERT(false && "Compare on invalid type");
  return 0;
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) return false;
  if (is_null_ != other.is_null_) return false;
  if (is_null_) return true;
  return Compare(other) == 0;
}

std::string Value::ToString() const {
  if (is_null_) return "NULL";
  switch (type_.id()) {
    case TypeId::kBool:
      return data_.boolean ? "true" : "false";
    case TypeId::kInt8:
      return std::to_string(data_.i8);
    case TypeId::kInt16:
      return std::to_string(data_.i16);
    case TypeId::kInt32:
    case TypeId::kDate:
      return std::to_string(data_.i32);
    case TypeId::kInt64:
      return std::to_string(data_.i64);
    case TypeId::kUint32:
      return std::to_string(data_.u32);
    case TypeId::kUint64:
      return std::to_string(data_.u64);
    case TypeId::kFloat:
      return StringFormat("%g", data_.f32);
    case TypeId::kDouble:
      return StringFormat("%g", data_.f64);
    case TypeId::kVarchar:
      return str_;
    case TypeId::kInvalid:
      break;
  }
  return "invalid";
}

}  // namespace rowsort
