// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "vector/vector.h"

#include <cstring>

namespace rowsort {

Vector::Vector(LogicalType type, uint64_t capacity)
    : type_(type), capacity_(capacity),
      data_(new uint8_t[capacity * type.FixedSize()]()),
      validity_(capacity) {}

void Vector::SetValue(uint64_t row, const Value& value) {
  ROWSORT_ASSERT(row < capacity_);
  ROWSORT_ASSERT(value.type() == type_);
  if (value.is_null()) {
    validity_.SetInvalid(row);
    return;
  }
  validity_.SetValid(row);
  switch (type_.id()) {
    case TypeId::kBool:
      TypedData<int8_t>()[row] = value.bool_value() ? 1 : 0;
      break;
    case TypeId::kInt8:
      TypedData<int8_t>()[row] = value.int8_value();
      break;
    case TypeId::kInt16:
      TypedData<int16_t>()[row] = value.int16_value();
      break;
    case TypeId::kInt32:
    case TypeId::kDate:
      TypedData<int32_t>()[row] = value.int32_value();
      break;
    case TypeId::kInt64:
      TypedData<int64_t>()[row] = value.int64_value();
      break;
    case TypeId::kUint32:
      TypedData<uint32_t>()[row] = value.uint32_value();
      break;
    case TypeId::kUint64:
      TypedData<uint64_t>()[row] = value.uint64_value();
      break;
    case TypeId::kFloat:
      TypedData<float>()[row] = value.float_value();
      break;
    case TypeId::kDouble:
      TypedData<double>()[row] = value.double_value();
      break;
    case TypeId::kVarchar:
      SetString(row, value.varchar_value());
      break;
    case TypeId::kInvalid:
      ROWSORT_ASSERT(false && "SetValue on invalid type");
  }
}

Value Vector::GetValue(uint64_t row) const {
  ROWSORT_ASSERT(row < capacity_);
  if (!validity_.RowIsValid(row)) {
    return Value::Null(type_);
  }
  switch (type_.id()) {
    case TypeId::kBool:
      return Value::Bool(TypedData<int8_t>()[row] != 0);
    case TypeId::kInt8:
      return Value::Int8(TypedData<int8_t>()[row]);
    case TypeId::kInt16:
      return Value::Int16(TypedData<int16_t>()[row]);
    case TypeId::kInt32:
      return Value::Int32(TypedData<int32_t>()[row]);
    case TypeId::kDate:
      return Value::Date(TypedData<int32_t>()[row]);
    case TypeId::kInt64:
      return Value::Int64(TypedData<int64_t>()[row]);
    case TypeId::kUint32:
      return Value::Uint32(TypedData<uint32_t>()[row]);
    case TypeId::kUint64:
      return Value::Uint64(TypedData<uint64_t>()[row]);
    case TypeId::kFloat:
      return Value::Float(TypedData<float>()[row]);
    case TypeId::kDouble:
      return Value::Double(TypedData<double>()[row]);
    case TypeId::kVarchar:
      return Value::Varchar(TypedData<string_t>()[row].ToString());
    case TypeId::kInvalid:
      break;
  }
  ROWSORT_ASSERT(false && "GetValue on invalid type");
  return Value();
}

}  // namespace rowsort
