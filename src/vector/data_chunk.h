// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vector/vector.h"

namespace rowsort {

/// \brief A horizontal slice of a table: one Vector per column, at most
/// kVectorSize rows. DataChunks are what flow between operators in the
/// vectorized engine; the sort operator consumes and produces them (Fig. 1).
class DataChunk {
 public:
  DataChunk() = default;
  ROWSORT_DISALLOW_COPY(DataChunk);
  DataChunk(DataChunk&&) = default;
  DataChunk& operator=(DataChunk&&) = default;

  /// Allocates one vector per type with capacity kVectorSize.
  void Initialize(const std::vector<LogicalType>& types,
                  uint64_t capacity = kVectorSize);

  uint64_t size() const { return count_; }
  void SetSize(uint64_t count) {
    ROWSORT_DASSERT(count <= capacity_);
    count_ = count;
  }
  uint64_t capacity() const { return capacity_; }
  uint64_t ColumnCount() const { return columns_.size(); }

  Vector& column(uint64_t idx) {
    ROWSORT_DASSERT(idx < columns_.size());
    return columns_[idx];
  }
  const Vector& column(uint64_t idx) const {
    ROWSORT_DASSERT(idx < columns_.size());
    return columns_[idx];
  }

  std::vector<LogicalType> Types() const;

  /// Slow accessors for tests/examples.
  Value GetValue(uint64_t col, uint64_t row) const {
    return columns_[col].GetValue(row);
  }
  void SetValue(uint64_t col, uint64_t row, const Value& value) {
    columns_[col].SetValue(row, value);
  }

  /// Resets the row count (and validity) so the chunk can be refilled.
  void Reset();

  /// Pretty-prints up to \p max_rows rows (tests/examples).
  std::string ToString(uint64_t max_rows = 10) const;

 private:
  std::vector<Vector> columns_;
  uint64_t count_ = 0;
  uint64_t capacity_ = 0;
};

}  // namespace rowsort
