// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>
#include <memory>

#include "common/macros.h"
#include "types/logical_type.h"
#include "types/string_t.h"
#include "types/value.h"
#include "vector/string_heap.h"
#include "vector/validity_mask.h"

namespace rowsort {

/// Number of rows processed per vector, the unit of vectorized execution.
/// 2048 matches DuckDB's standard vector size.
constexpr uint64_t kVectorSize = 2048;

/// \brief A fixed-capacity column slice in DSM format: a flat typed array
/// plus a validity mask, the currency of the vectorized engine (paper Fig. 1).
///
/// VARCHAR vectors hold string_t descriptors; non-inlined payloads live in
/// the vector's own StringHeap.
class Vector {
 public:
  explicit Vector(LogicalType type, uint64_t capacity = kVectorSize);
  ROWSORT_DISALLOW_COPY(Vector);
  Vector(Vector&&) = default;
  Vector& operator=(Vector&&) = default;

  const LogicalType& type() const { return type_; }
  uint64_t capacity() const { return capacity_; }

  /// Raw data pointer (array of FixedSize()-wide slots).
  uint8_t* data() { return data_.get(); }
  const uint8_t* data() const { return data_.get(); }

  /// Typed access to the flat array.
  template <typename T>
  T* TypedData() {
    ROWSORT_DASSERT(sizeof(T) == static_cast<size_t>(type_.FixedSize()));
    return reinterpret_cast<T*>(data_.get());
  }
  template <typename T>
  const T* TypedData() const {
    ROWSORT_DASSERT(sizeof(T) == static_cast<size_t>(type_.FixedSize()));
    return reinterpret_cast<const T*>(data_.get());
  }

  ValidityMask& validity() { return validity_; }
  const ValidityMask& validity() const { return validity_; }

  /// Heap owning non-inlined string payloads of this vector.
  StringHeap& string_heap() { return string_heap_; }

  /// Slow typed accessors used by tests/examples.
  void SetValue(uint64_t row, const Value& value);
  Value GetValue(uint64_t row) const;

  /// Writes a string value at \p row, copying the payload into the heap.
  void SetString(uint64_t row, std::string_view view) {
    ROWSORT_DASSERT(type_.id() == TypeId::kVarchar);
    TypedData<string_t>()[row] = string_heap_.AddString(view);
  }

 private:
  LogicalType type_;
  uint64_t capacity_;
  std::unique_ptr<uint8_t[]> data_;
  ValidityMask validity_;
  StringHeap string_heap_;
};

}  // namespace rowsort
