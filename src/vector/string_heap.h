// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "types/string_t.h"

namespace rowsort {

/// \brief Arena that owns the character data of non-inlined strings.
///
/// Vectors and row collections store 16-byte string_t descriptors; any string
/// longer than the inline capacity points into a StringHeap. Blocks are never
/// reallocated, so descriptors stay valid for the heap's lifetime.
class StringHeap {
 public:
  static constexpr uint64_t kDefaultBlockSize = 256 * 1024;

  StringHeap() = default;
  ROWSORT_DISALLOW_COPY(StringHeap);
  StringHeap(StringHeap&&) = default;
  StringHeap& operator=(StringHeap&&) = default;

  /// Copies \p view into the heap and returns a descriptor for it. Strings
  /// short enough to inline never touch the heap.
  string_t AddString(std::string_view view) {
    uint32_t size = static_cast<uint32_t>(view.size());
    if (size <= string_t::kInlineLength) {
      return string_t(view.data(), size);
    }
    char* dest = Allocate(size);
    std::memcpy(dest, view.data(), size);
    return string_t(dest, size);
  }

  /// Copies the character data behind \p str (no-op result for inlined ones).
  string_t AddString(const string_t& str) {
    return AddString(str.View());
  }

  /// Raw arena allocation of \p size bytes (used by variable-size row heaps).
  char* Allocate(uint64_t size) {
    if (current_offset_ + size > current_capacity_) {
      uint64_t block_size = std::max(size, kDefaultBlockSize);
      blocks_.push_back(std::make_unique<char[]>(block_size));
      current_capacity_ = block_size;
      current_offset_ = 0;
      allocated_bytes_ += block_size;
    }
    char* result = blocks_.back().get() + current_offset_;
    current_offset_ += size;
    return result;
  }

  /// Total bytes handed out (diagnostics).
  uint64_t SizeBytes() const {
    uint64_t total = 0;
    for (size_t i = 0; i + 1 < blocks_.size(); ++i) total += kDefaultBlockSize;
    total += current_offset_;
    return total;
  }

  /// Total block bytes owned by the arena (memory accounting: what the heap
  /// actually holds resident, as opposed to what was handed out).
  uint64_t AllocatedBytes() const { return allocated_bytes_; }

  /// Moves all blocks of \p other into this heap (descriptors into \p other
  /// remain valid because block storage is stable).
  void Merge(StringHeap&& other) {
    if (other.blocks_.empty()) return;
    if (blocks_.empty()) {
      blocks_ = std::move(other.blocks_);
      current_capacity_ = other.current_capacity_;
      current_offset_ = other.current_offset_;
    } else {
      // Keep our back block active (Allocate() appends there); adopt the
      // other heap's blocks in front.
      blocks_.insert(blocks_.begin(),
                     std::make_move_iterator(other.blocks_.begin()),
                     std::make_move_iterator(other.blocks_.end()));
    }
    allocated_bytes_ += other.allocated_bytes_;
    other.blocks_.clear();
    other.current_capacity_ = 0;
    other.current_offset_ = 0;
    other.allocated_bytes_ = 0;
  }

 private:
  std::vector<std::unique_ptr<char[]>> blocks_;
  uint64_t current_capacity_ = 0;
  uint64_t current_offset_ = 0;
  uint64_t allocated_bytes_ = 0;
};

}  // namespace rowsort
