// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace rowsort {

/// \brief Bitmask tracking NULL entries of a vector (1 = valid, 0 = NULL).
///
/// Lazily allocated: a mask with no storage means "all valid", which keeps
/// the common NULL-free path allocation- and branch-cheap.
class ValidityMask {
 public:
  ValidityMask() = default;
  explicit ValidityMask(uint64_t count) { Resize(count); }

  /// True when no entry has ever been set NULL (no storage allocated).
  bool AllValid() const { return bits_.empty(); }

  bool RowIsValid(uint64_t row) const {
    if (bits_.empty()) return true;
    ROWSORT_DASSERT(row / 64 < bits_.size());
    return (bits_[row / 64] >> (row % 64)) & 1;
  }

  /// Marks \p row NULL, materializing the mask on first use.
  void SetInvalid(uint64_t row) {
    EnsureCapacity(row + 1);
    bits_[row / 64] &= ~(uint64_t(1) << (row % 64));
  }

  /// Marks \p row valid (not NULL).
  void SetValid(uint64_t row) {
    if (bits_.empty()) return;  // already all-valid
    EnsureCapacity(row + 1);
    bits_[row / 64] |= uint64_t(1) << (row % 64);
  }

  void Set(uint64_t row, bool valid) {
    if (valid) {
      SetValid(row);
    } else {
      SetInvalid(row);
    }
  }

  /// 64-row validity word \p w (bit i = row w*64+i is valid). All-ones when
  /// the mask is unmaterialized or \p w is beyond the materialized storage
  /// (both mean "no row in that span was ever set NULL"). Lets scatter
  /// kernels test 64 rows with one compare instead of 64 branches.
  uint64_t ValidWord(uint64_t w) const {
    return w < bits_.size() ? bits_[w] : ~uint64_t(0);
  }

  /// Number of NULL rows among the first \p count rows.
  uint64_t CountInvalid(uint64_t count) const {
    if (bits_.empty()) return 0;
    uint64_t invalid = 0;
    for (uint64_t row = 0; row < count; ++row) {
      invalid += RowIsValid(row) ? 0 : 1;
    }
    return invalid;
  }

  /// Drops all NULL markers (back to the all-valid fast path).
  void Reset() { bits_.clear(); }

  /// Pre-sizes storage for \p count rows, preserving existing validity.
  void Resize(uint64_t count) {
    if (!bits_.empty()) EnsureCapacity(count);
    capacity_ = count;
  }

 private:
  void EnsureCapacity(uint64_t count) {
    uint64_t words = (std::max(count, capacity_) + 63) / 64;
    if (bits_.size() < words) bits_.resize(words, ~uint64_t(0));
  }

  std::vector<uint64_t> bits_;
  uint64_t capacity_ = 0;
};

}  // namespace rowsort
