// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "vector/data_chunk.h"

#include <sstream>

namespace rowsort {

void DataChunk::Initialize(const std::vector<LogicalType>& types,
                           uint64_t capacity) {
  columns_.clear();
  columns_.reserve(types.size());
  for (const auto& type : types) {
    columns_.emplace_back(type, capacity);
  }
  capacity_ = capacity;
  count_ = 0;
}

std::vector<LogicalType> DataChunk::Types() const {
  std::vector<LogicalType> types;
  types.reserve(columns_.size());
  for (const auto& col : columns_) types.push_back(col.type());
  return types;
}

void DataChunk::Reset() {
  count_ = 0;
  for (auto& col : columns_) col.validity().Reset();
}

std::string DataChunk::ToString(uint64_t max_rows) const {
  std::ostringstream out;
  out << "DataChunk [" << ColumnCount() << " cols, " << count_ << " rows]\n";
  uint64_t rows = std::min(count_, max_rows);
  for (uint64_t row = 0; row < rows; ++row) {
    out << "  ";
    for (uint64_t col = 0; col < ColumnCount(); ++col) {
      if (col > 0) out << " | ";
      out << GetValue(col, row).ToString();
    }
    out << "\n";
  }
  if (rows < count_) out << "  ... (" << (count_ - rows) << " more)\n";
  return out.str();
}

}  // namespace rowsort
