// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "vector/string_heap.h"

// StringHeap is header-only; this translation unit anchors the library.
