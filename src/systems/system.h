// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sortkey/sort_spec.h"
#include "workload/tables.h"

namespace rowsort {

struct SortEngineConfig;
struct SortMetrics;

/// \brief A database system under benchmark (paper §VII).
///
/// Each implementation reproduces the *sorting architecture* the paper
/// describes for one of the five compared systems, on this repository's
/// shared substrate (same data structures, same base algorithms), so the
/// end-to-end comparison isolates architectural differences exactly as the
/// paper intends. Sort() performs the work of the paper's benchmark query
///
///   SELECT count(*) FROM (SELECT ... ORDER BY ...) OFFSET 1
///
/// i.e., it fully sorts the input *and materializes the complete payload in
/// sorted order* ("The count aggregate reads the sorted subquery, forcing
/// systems that lazily collect a sorted payload to collect it fully").
class SortSystem {
 public:
  virtual ~SortSystem() = default;

  /// System label used in benchmark output ("DuckDB-like" etc).
  virtual std::string name() const = 0;

  /// Fully sorts \p input by \p spec and returns the materialized result.
  virtual Table Sort(const Table& input, const SortSpec& spec) = 0;

  /// Status-propagating variant of Sort() for callers that run under a
  /// cancellation token or deadline. The default forwards to Sort() (the
  /// benchmark systems have no fallible path of their own); systems built on
  /// the fallible pipeline override it so cancellation / spill-I/O failures
  /// surface as a Status instead of aborting the process.
  virtual StatusOr<Table> TrySort(const Table& input, const SortSpec& spec) {
    return Sort(input, spec);
  }

  /// Metrics of the most recent Sort()/TrySort(), for systems that collect
  /// them (currently the DuckDB-like pipeline); nullptr otherwise. The
  /// struct is reused across calls and reset at the start of each sort, so
  /// a second sort through the same system never reports accumulated
  /// counters.
  virtual const SortMetrics* last_metrics() const { return nullptr; }
};

/// DuckDB-like: this library's row-based pipeline — normalized keys, radix
/// or pdqsort thread-local run sort, cascaded Merge-Path merge (Fig. 11).
std::unique_ptr<SortSystem> MakeDuckDBLike(uint64_t threads);

/// DuckDB-like with an explicit base engine configuration: \p base supplies
/// the cancellation token / deadline, spill directory, and memory limit,
/// while threads / algorithm / run sizing are still derived per Sort() call.
/// Use TrySort() with this variant — a cancelled Sort() would abort.
std::unique_ptr<SortSystem> MakeDuckDBLike(uint64_t threads,
                                           const SortEngineConfig& base);

/// ClickHouse-like: columnar format throughout; thread-local radix sort for
/// a single integer key, otherwise pdqsort with a tuple-at-a-time
/// comparator; k-way merge of the sorted runs; payload gathered at the end.
std::unique_ptr<SortSystem> MakeClickHouseLike(uint64_t threads);

/// MonetDB-like: columnar format, single-threaded quicksort with the subsort
/// approach for multiple key columns; payload collected after sorting.
std::unique_ptr<SortSystem> MakeMonetDBLike();

/// HyPer-like: compiled row-based sort — statically typed (inlined)
/// comparator over NSM rows, thread-local pdqsort-style quicksort, parallel
/// k-way merge on pointers, payload physically collected when reading.
std::unique_ptr<SortSystem> MakeHyPerLike(uint64_t threads);

/// Umbra-like: same architecture as HyPer-like; its generated comparator
/// evaluates every key column (no early-exit specialization), which models
/// the stronger multi-key degradation the paper measures for Umbra
/// (§VII-C: up to 2.96x slower with four keys vs ~1.5x for HyPer/DuckDB).
std::unique_ptr<SortSystem> MakeUmbraLike(uint64_t threads);

/// All five systems in the paper's presentation order.
std::vector<std::unique_ptr<SortSystem>> MakeAllSystems(uint64_t threads);

}  // namespace rowsort
