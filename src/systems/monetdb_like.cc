// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// MonetDB-like system (paper §VII): "MonetDB also uses a columnar format
// throughout the sort, using a single-threaded quicksort implementation. A
// subsort approach is used when sorting by multiple key columns. After
// sorting the key columns, the payload is collected in sorted order."
#include "sortalgo/intro_sort.h"
#include "systems/columnar_common.h"
#include "systems/system.h"

namespace rowsort {

namespace {

class MonetDBLike : public SortSystem {
 public:
  std::string name() const override { return "MonetDB-like"; }

  Table Sort(const Table& input, const SortSpec& spec) override {
    MaterializedColumns cols = MaterializeColumns(input);
    const uint64_t n = cols.count;
    ColumnarTupleComparator comparator(cols, spec);

    std::vector<uint64_t> order(n);
    for (uint64_t i = 0; i < n; ++i) order[i] = i;
    if (n > 1) {
      Subsort(comparator, order.data(), 0, n, 0);
    }
    return GatherToTable(cols, order);
  }

 private:
  /// Single-threaded columnar subsort: quicksort by one key column at a
  /// time, recursing into tied ranges (branch-free per-column comparator).
  static void Subsort(const ColumnarTupleComparator& comparator,
                      uint64_t* order, uint64_t begin, uint64_t end,
                      uint64_t key) {
    IntroSort(order + begin, order + end, [&](uint64_t a, uint64_t b) {
      return comparator.CompareColumn(key, a, b) < 0;
    });
    if (key + 1 == comparator.KeyColumnCount()) return;
    uint64_t run_start = begin;
    for (uint64_t i = begin + 1; i <= end; ++i) {
      if (i == end ||
          comparator.CompareColumn(key, order[run_start], order[i]) != 0) {
        if (i - run_start > 1) {
          Subsort(comparator, order, run_start, i, key + 1);
        }
        run_start = i;
      }
    }
  }
};

}  // namespace

std::unique_ptr<SortSystem> MakeMonetDBLike() {
  return std::make_unique<MonetDBLike>();
}

}  // namespace rowsort
