// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// ClickHouse-like system (paper §VII): "ClickHouse uses a columnar format
// throughout the sort and performs thread-local sorts with radix sort if
// sorting by a single integer column; otherwise, it uses pdqsort using a
// tuple-at-a-time comparison approach. ... After the thread-local sorts are
// done, the sorted runs are merged using a k-way merge."
#include <atomic>

#include "common/bit_util.h"
#include "parallel/thread_pool.h"
#include "sortalgo/pdq_sort.h"
#include "sortalgo/radix_sort.h"
#include "systems/columnar_common.h"
#include "systems/kway_merge.h"
#include "systems/system.h"

namespace rowsort {

namespace {

/// True when the paper's radix-sort fast path applies: exactly one key
/// column of a fixed-width integer type.
bool SingleIntegerKey(const SortSpec& spec) {
  if (spec.columns().size() != 1) return false;
  switch (spec.columns()[0].type.id()) {
    case TypeId::kInt8:
    case TypeId::kInt16:
    case TypeId::kInt32:
    case TypeId::kInt64:
    case TypeId::kUint32:
    case TypeId::kUint64:
    case TypeId::kDate:
      return true;
    default:
      return false;  // floats and strings take the pdqsort path
  }
}

/// Order-preserving big-endian encoding of the single integer key of row
/// \p row (NULL handled via a leading byte), for the radix fast path.
void EncodeSingleKey(const MaterializedColumns& cols, const SortColumn& sc,
                     uint64_t row, uint8_t* out, uint64_t key_width) {
  const uint64_t c = sc.column_index;
  bool valid = cols.RowIsValid(c, row);
  out[0] = sc.null_order == NullOrder::kNullsFirst ? (valid ? 1 : 0)
                                                   : (valid ? 0 : 0xFF);
  std::memset(out + 1, 0, key_width - 1);
  if (!valid) return;
  const uint8_t* data = cols.data[c].data();
  switch (sc.type.id()) {
    case TypeId::kInt8:
      out[1] = static_cast<uint8_t>(data[row]) ^ 0x80;
      break;
    case TypeId::kInt16: {
      uint16_t v = bit_util::LoadUnaligned<uint16_t>(data + row * 2) ^ 0x8000u;
      bit_util::StoreUnaligned(out + 1, bit_util::ByteSwap(v));
      break;
    }
    case TypeId::kInt32:
    case TypeId::kDate: {
      uint32_t v =
          bit_util::LoadUnaligned<uint32_t>(data + row * 4) ^ 0x80000000u;
      bit_util::StoreUnaligned(out + 1, bit_util::ByteSwap(v));
      break;
    }
    case TypeId::kUint32: {
      uint32_t v = bit_util::LoadUnaligned<uint32_t>(data + row * 4);
      bit_util::StoreUnaligned(out + 1, bit_util::ByteSwap(v));
      break;
    }
    case TypeId::kInt64: {
      uint64_t v = bit_util::LoadUnaligned<uint64_t>(data + row * 8) ^
                   0x8000000000000000ull;
      bit_util::StoreUnaligned(out + 1, bit_util::ByteSwap(v));
      break;
    }
    case TypeId::kUint64: {
      uint64_t v = bit_util::LoadUnaligned<uint64_t>(data + row * 8);
      bit_util::StoreUnaligned(out + 1, bit_util::ByteSwap(v));
      break;
    }
    default:
      ROWSORT_ASSERT(false && "not an integer key");
  }
  if (sc.order == OrderType::kDescending) {
    for (uint64_t i = 1; i < key_width; ++i) out[i] = ~out[i];
  }
}

class ClickHouseLike : public SortSystem {
 public:
  explicit ClickHouseLike(uint64_t threads)
      : threads_(std::max<uint64_t>(threads, 1)) {}

  std::string name() const override { return "ClickHouse-like"; }

  Table Sort(const Table& input, const SortSpec& spec) override {
    MaterializedColumns cols = MaterializeColumns(input);
    const uint64_t n = cols.count;

    // Thread-local sorted runs over row-index ranges.
    const uint64_t num_runs =
        std::min<uint64_t>(threads_, std::max<uint64_t>(n / 1024, 1));
    std::vector<std::vector<uint64_t>> runs(num_runs);
    ColumnarTupleComparator comparator(cols, spec);
    bool radix_path = SingleIntegerKey(spec);

    auto sort_run = [&](uint64_t r) {
      uint64_t begin = n * r / num_runs;
      uint64_t end = n * (r + 1) / num_runs;
      auto& run = runs[r];
      run.resize(end - begin);
      for (uint64_t i = begin; i < end; ++i) run[i - begin] = i;
      if (radix_path) {
        SortRunRadix(cols, spec.columns()[0], run);
      } else {
        // Tuple-at-a-time comparator: random access into every key column
        // touched, with branches per column (the §IV-A cost model).
        PdqSort(run.begin(), run.end(), [&](uint64_t a, uint64_t b) {
          return comparator.Less(a, b);
        });
      }
    };

    if (num_runs > 1) {
      ThreadPool pool(threads_);
      pool.ParallelFor(num_runs, sort_run);
    } else {
      sort_run(0);
    }

    // k-way merge of the sorted runs, then gather the payload.
    std::vector<uint64_t> order =
        KWayMerge(runs, [&](uint64_t a, uint64_t b) {
          return comparator.Less(a, b);
        });
    return GatherToTable(cols, order);
  }

 private:
  /// Radix path: (encoded key | row index) records, LSD radix on the key.
  static void SortRunRadix(const MaterializedColumns& cols,
                           const SortColumn& sc, std::vector<uint64_t>& run) {
    const uint64_t key_width =
        1 + static_cast<uint64_t>(sc.type.FixedSize());  // NULL byte + value
    const uint64_t row_width = bit_util::AlignValue(key_width) + 8;
    std::vector<uint8_t> records(run.size() * row_width);
    for (uint64_t i = 0; i < run.size(); ++i) {
      uint8_t* rec = records.data() + i * row_width;
      EncodeSingleKey(cols, sc, run[i], rec, key_width);
      bit_util::StoreUnaligned<uint64_t>(rec + row_width - 8, run[i]);
    }
    std::vector<uint8_t> aux(records.size());
    RadixSortConfig config;
    config.row_width = row_width;
    config.key_offset = 0;
    config.key_width = key_width;
    config.lsd_key_width_bound = 64;  // ClickHouse's radix sort is LSD
    RadixSort(records.data(), aux.data(), run.size(), config);
    for (uint64_t i = 0; i < run.size(); ++i) {
      run[i] = bit_util::LoadUnaligned<uint64_t>(records.data() +
                                                 i * row_width + row_width - 8);
    }
  }

  uint64_t threads_;
};

}  // namespace

std::unique_ptr<SortSystem> MakeClickHouseLike(uint64_t threads) {
  return std::make_unique<ClickHouseLike>(threads);
}

}  // namespace rowsort
