// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// DuckDB-like system: the library's own pipeline (paper Fig. 11) — this is
// the configuration that shipped in DuckDB 0.3+.
#include "engine/analyze.h"
#include "engine/sort_engine.h"
#include "systems/system.h"

namespace rowsort {

namespace {

class DuckDBLike : public SortSystem {
 public:
  explicit DuckDBLike(uint64_t threads, const SortEngineConfig& base = {})
      : threads_(std::max<uint64_t>(threads, 1)), base_(base) {}

  std::string name() const override { return "DuckDB-like"; }

  Table Sort(const Table& input, const SortSpec& spec) override {
    return TrySort(input, spec).ValueOrDie();
  }

  StatusOr<Table> TrySort(const Table& input, const SortSpec& spec) override {
    // Statistics-driven prefix choice (§VII): shrink VARCHAR key prefixes to
    // the observed maximum string length (at most 12).
    SortSpec tuned = spec;
    TuneStringPrefixes(input, &tuned);
    // The base config carries the caller's cancellation token / deadline,
    // spill directory, and memory limit; threads and run sizing are derived
    // per call as before.
    SortEngineConfig config = base_;
    config.threads = threads_;
    config.algorithm = RunSortAlgorithm::kAuto;
    // One run per thread when the data fits in memory (§II: "each thread
    // will generally generate one sorted run").
    config.run_size_rows =
        std::max<uint64_t>(input.row_count() / threads_ + 1, kVectorSize);
    // metrics_ is reused across calls; SortTable resets it per sort.
    return RelationalSort::SortTable(input, tuned, config, &metrics_);
  }

  const SortMetrics* last_metrics() const override { return &metrics_; }

 private:
  uint64_t threads_;
  SortEngineConfig base_;
  SortMetrics metrics_;
};

}  // namespace

std::unique_ptr<SortSystem> MakeDuckDBLike(uint64_t threads) {
  return std::make_unique<DuckDBLike>(threads);
}

std::unique_ptr<SortSystem> MakeDuckDBLike(uint64_t threads,
                                           const SortEngineConfig& base) {
  return std::make_unique<DuckDBLike>(threads, base);
}

std::vector<std::unique_ptr<SortSystem>> MakeAllSystems(uint64_t threads) {
  std::vector<std::unique_ptr<SortSystem>> systems;
  systems.push_back(MakeDuckDBLike(threads));
  systems.push_back(MakeClickHouseLike(threads));
  systems.push_back(MakeMonetDBLike());
  systems.push_back(MakeHyPerLike(threads));
  systems.push_back(MakeUmbraLike(threads));
  return systems;
}

}  // namespace rowsort
