// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>
#include <vector>

namespace rowsort {

/// \brief Generic k-way merge over sorted runs of elements (row indices or
/// row pointers), used by the ClickHouse-like and HyPer/Umbra-like systems
/// (paper §VII: "the sorted runs are merged using a k-way merge").
///
/// Uses a binary heap of cursors; ties break toward the lower run index so
/// the merge is stable with respect to run order.
///
/// \tparam T element type (uint64_t row index, const uint8_t* row pointer)
/// \tparam Less strict weak ordering on T
template <typename T, typename Less>
std::vector<T> KWayMerge(const std::vector<std::vector<T>>& runs, Less less) {
  struct Cursor {
    const std::vector<T>* run;
    uint64_t pos;
    uint64_t run_index;
  };
  uint64_t total = 0;
  std::vector<Cursor> heap;
  heap.reserve(runs.size());
  for (uint64_t r = 0; r < runs.size(); ++r) {
    total += runs[r].size();
    if (!runs[r].empty()) heap.push_back({&runs[r], 0, r});
  }

  auto cursor_greater = [&less](const Cursor& a, const Cursor& b) {
    const T& va = (*a.run)[a.pos];
    const T& vb = (*b.run)[b.pos];
    if (less(va, vb)) return false;
    if (less(vb, va)) return true;
    return a.run_index > b.run_index;  // stability
  };

  // Build a min-heap by hand (no std::push_heap: keeps the hot loop simple
  // and branch-predictable with sift-down only).
  auto sift_down = [&](uint64_t root) {
    uint64_t size = heap.size();
    while (true) {
      uint64_t child = 2 * root + 1;
      if (child >= size) break;
      if (child + 1 < size && cursor_greater(heap[child], heap[child + 1])) {
        ++child;
      }
      if (!cursor_greater(heap[root], heap[child])) break;
      std::swap(heap[root], heap[child]);
      root = child;
    }
  };
  for (uint64_t i = heap.size(); i-- > 0;) sift_down(i);

  std::vector<T> result;
  result.reserve(total);
  while (!heap.empty()) {
    Cursor& top = heap[0];
    result.push_back((*top.run)[top.pos]);
    if (++top.pos == top.run->size()) {
      heap[0] = heap.back();
      heap.pop_back();
    }
    if (!heap.empty()) sift_down(0);
  }
  return result;
}

}  // namespace rowsort
