// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "systems/columnar_common.h"

#include <cstring>

#include "common/bit_util.h"
#include "common/macros.h"
#include "types/string_t.h"

namespace rowsort {

MaterializedColumns MaterializeColumns(const Table& input) {
  MaterializedColumns cols;
  cols.types = input.types();
  cols.names = input.names();
  cols.count = input.row_count();
  const uint64_t num_cols = cols.types.size();
  cols.data.resize(num_cols);
  cols.validity.resize(num_cols);
  for (uint64_t c = 0; c < num_cols; ++c) {
    cols.data[c].resize(cols.count *
                        static_cast<uint64_t>(cols.types[c].FixedSize()));
  }

  uint64_t offset = 0;
  for (uint64_t ci = 0; ci < input.ChunkCount(); ++ci) {
    const DataChunk& chunk = input.chunk(ci);
    for (uint64_t c = 0; c < num_cols; ++c) {
      const Vector& vec = chunk.column(c);
      const uint64_t size = cols.types[c].FixedSize();
      if (cols.types[c].id() == TypeId::kVarchar) {
        // Re-own string payloads so the materialization outlives the input.
        auto* dest = reinterpret_cast<string_t*>(cols.data[c].data()) + offset;
        const auto* src = vec.TypedData<string_t>();
        for (uint64_t r = 0; r < chunk.size(); ++r) {
          dest[r] = vec.validity().RowIsValid(r) ? cols.heap.AddString(src[r])
                                                 : string_t();
        }
      } else {
        std::memcpy(cols.data[c].data() + offset * size, vec.data(),
                    chunk.size() * size);
      }
      if (!vec.validity().AllValid()) {
        if (cols.validity[c].empty()) {
          cols.validity[c].assign(cols.count, 1);
        }
        for (uint64_t r = 0; r < chunk.size(); ++r) {
          cols.validity[c][offset + r] = vec.validity().RowIsValid(r) ? 1 : 0;
        }
      }
    }
    offset += chunk.size();
  }
  return cols;
}

Table GatherToTable(const MaterializedColumns& cols,
                    const std::vector<uint64_t>& order) {
  Table out(cols.types, cols.names);
  uint64_t offset = 0;
  while (offset < order.size()) {
    uint64_t n = std::min(kVectorSize, order.size() - offset);
    DataChunk chunk = out.NewChunk();
    for (uint64_t c = 0; c < cols.types.size(); ++c) {
      Vector& vec = chunk.column(c);
      const uint64_t size = cols.types[c].FixedSize();
      if (cols.types[c].id() == TypeId::kVarchar) {
        const auto* src = reinterpret_cast<const string_t*>(cols.data[c].data());
        for (uint64_t i = 0; i < n; ++i) {
          uint64_t row = order[offset + i];
          if (!cols.RowIsValid(c, row)) {
            vec.validity().SetInvalid(i);
          } else {
            vec.SetString(i, src[row].View());
          }
        }
      } else {
        uint8_t* dest = vec.data();
        for (uint64_t i = 0; i < n; ++i) {
          uint64_t row = order[offset + i];
          if (!cols.RowIsValid(c, row)) {
            vec.validity().SetInvalid(i);
          } else {
            std::memcpy(dest + i * size, cols.data[c].data() + row * size,
                        size);
          }
        }
      }
    }
    chunk.SetSize(n);
    out.Append(std::move(chunk));
    offset += n;
  }
  return out;
}

ColumnarTupleComparator::ColumnarTupleComparator(
    const MaterializedColumns& cols, const SortSpec& spec)
    : cols_(&cols), spec_(&spec) {
  for (const auto& col : spec.columns()) {
    ROWSORT_ASSERT(col.column_index < cols.types.size());
    ROWSORT_ASSERT(col.type == cols.types[col.column_index]);
  }
}

namespace {

template <typename T>
int CmpAt(const uint8_t* data, uint64_t a, uint64_t b) {
  T va = bit_util::LoadUnaligned<T>(data + a * sizeof(T));
  T vb = bit_util::LoadUnaligned<T>(data + b * sizeof(T));
  if (va < vb) return -1;
  if (vb < va) return 1;
  return 0;
}

template <typename T>
int CmpFloatAt(const uint8_t* data, uint64_t a, uint64_t b) {
  T va = bit_util::LoadUnaligned<T>(data + a * sizeof(T));
  T vb = bit_util::LoadUnaligned<T>(data + b * sizeof(T));
  bool a_nan = va != va, b_nan = vb != vb;
  if (a_nan || b_nan) {
    if (a_nan && b_nan) return 0;
    return a_nan ? 1 : -1;
  }
  if (va < vb) return -1;
  if (vb < va) return 1;
  return 0;
}

}  // namespace

int ColumnarTupleComparator::CompareColumn(uint64_t k, uint64_t a,
                                           uint64_t b) const {
  const SortColumn& sc = spec_->columns()[k];
  const uint64_t c = sc.column_index;
  bool valid_a = cols_->RowIsValid(c, a);
  bool valid_b = cols_->RowIsValid(c, b);
  if (!valid_a || !valid_b) {
    if (!valid_a && !valid_b) return 0;
    bool nulls_first = sc.null_order == NullOrder::kNullsFirst;
    if (!valid_a) return nulls_first ? -1 : 1;
    return nulls_first ? 1 : -1;
  }
  const uint8_t* data = cols_->data[c].data();
  int cmp = 0;
  switch (sc.type.id()) {
    case TypeId::kBool:
    case TypeId::kInt8:
      cmp = CmpAt<int8_t>(data, a, b);
      break;
    case TypeId::kInt16:
      cmp = CmpAt<int16_t>(data, a, b);
      break;
    case TypeId::kInt32:
    case TypeId::kDate:
      cmp = CmpAt<int32_t>(data, a, b);
      break;
    case TypeId::kInt64:
      cmp = CmpAt<int64_t>(data, a, b);
      break;
    case TypeId::kUint32:
      cmp = CmpAt<uint32_t>(data, a, b);
      break;
    case TypeId::kUint64:
      cmp = CmpAt<uint64_t>(data, a, b);
      break;
    case TypeId::kFloat:
      cmp = CmpFloatAt<float>(data, a, b);
      break;
    case TypeId::kDouble:
      cmp = CmpFloatAt<double>(data, a, b);
      break;
    case TypeId::kVarchar: {
      const auto* strings = reinterpret_cast<const string_t*>(data);
      cmp = strings[a].Compare(strings[b]);
      break;
    }
    case TypeId::kInvalid:
      ROWSORT_ASSERT(false && "compare of invalid type");
  }
  return sc.order == OrderType::kDescending ? -cmp : cmp;
}

int ColumnarTupleComparator::Compare(uint64_t a, uint64_t b) const {
  const uint64_t keys = spec_->columns().size();
  for (uint64_t k = 0; k < keys; ++k) {
    int cmp = CompareColumn(k, a, b);
    if (cmp != 0) return cmp;
  }
  return 0;
}

}  // namespace rowsort
