// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// HyPer-like and Umbra-like systems (paper §VII): "HyPer and Umbra have a
// compiled, row-based sorting implementation ... Threads perform a
// thread-local quicksort that is similar to pdqsort. The results are then
// merged using a parallel k-way merge. This merge is performed on pointers
// rather than physically moving the data. The data is physically collected
// in the sorted order when reading the output of the sort operator."
//
// A JIT engine emits a comparator specialized for the query's exact key
// types; the C++ equivalent is a template instantiation with inlined typed
// loads (paper §V-A). We pre-instantiate the shapes the evaluation uses
// (1-4 fixed-width numeric keys, string keys) and dispatch at query time,
// falling back to an interpreted comparator for unanticipated shapes.
#include <functional>

#include "common/bit_util.h"
#include "parallel/thread_pool.h"
#include "row/row_collection.h"
#include "sortalgo/pdq_sort.h"
#include "systems/kway_merge.h"
#include "systems/system.h"
#include "types/string_t.h"

namespace rowsort {

namespace {

/// Per-key-column metadata baked into the "generated" comparator.
struct KeyMeta {
  uint64_t column = 0;       ///< column index (validity bit position)
  uint64_t offset = 0;       ///< value offset within the row
  bool descending = false;
  bool nulls_first = false;
};

template <typename T>
int CompareTyped(const uint8_t* row_a, const uint8_t* row_b,
                 const KeyMeta& meta) {
  bool valid_a = RowLayout::IsValid(row_a, meta.column);
  bool valid_b = RowLayout::IsValid(row_b, meta.column);
  if (!valid_a || !valid_b) {
    if (!valid_a && !valid_b) return 0;
    if (!valid_a) return meta.nulls_first ? -1 : 1;
    return meta.nulls_first ? 1 : -1;
  }
  T va = bit_util::LoadUnaligned<T>(row_a + meta.offset);
  T vb = bit_util::LoadUnaligned<T>(row_b + meta.offset);
  int cmp;
  if constexpr (std::is_floating_point_v<T>) {
    bool a_nan = va != va, b_nan = vb != vb;
    if (a_nan || b_nan) {
      cmp = (a_nan && b_nan) ? 0 : (a_nan ? 1 : -1);
    } else {
      cmp = va < vb ? -1 : (vb < va ? 1 : 0);
    }
  } else {
    cmp = va < vb ? -1 : (vb < va ? 1 : 0);
  }
  return meta.descending ? -cmp : cmp;
}

inline int CompareString(const uint8_t* row_a, const uint8_t* row_b,
                         const KeyMeta& meta) {
  bool valid_a = RowLayout::IsValid(row_a, meta.column);
  bool valid_b = RowLayout::IsValid(row_b, meta.column);
  if (!valid_a || !valid_b) {
    if (!valid_a && !valid_b) return 0;
    if (!valid_a) return meta.nulls_first ? -1 : 1;
    return meta.nulls_first ? 1 : -1;
  }
  string_t a = bit_util::LoadUnaligned<string_t>(row_a + meta.offset);
  string_t b = bit_util::LoadUnaligned<string_t>(row_b + meta.offset);
  int cmp = a.Compare(b);
  return meta.descending ? -cmp : cmp;
}

/// "Generated" comparator for K keys of fixed numeric type T: inlined typed
/// loads, loop unrolled over a compile-time K. EarlyExit distinguishes the
/// HyPer model (stop at the first deciding column) from the Umbra model
/// (evaluate every column, combine results), which reproduces Umbra's
/// stronger multi-key degradation in Fig. 13.
template <typename T, int K, bool EarlyExit>
struct TypedComparator {
  KeyMeta meta[K];

  bool operator()(const uint8_t* a, const uint8_t* b) const {
    if constexpr (EarlyExit) {
      for (int k = 0; k < K; ++k) {
        int cmp = CompareTyped<T>(a, b, meta[k]);
        if (cmp != 0) return cmp < 0;
      }
      return false;
    } else {
      int result = 0;
      for (int k = K - 1; k >= 0; --k) {
        int cmp = CompareTyped<T>(a, b, meta[k]);
        result = cmp != 0 ? cmp : result;
      }
      return result < 0;
    }
  }
};

/// Generated comparator for K VARCHAR keys.
template <int K, bool EarlyExit>
struct StringComparator {
  KeyMeta meta[K];

  bool operator()(const uint8_t* a, const uint8_t* b) const {
    if constexpr (EarlyExit) {
      for (int k = 0; k < K; ++k) {
        int cmp = CompareString(a, b, meta[k]);
        if (cmp != 0) return cmp < 0;
      }
      return false;
    } else {
      int result = 0;
      for (int k = K - 1; k >= 0; --k) {
        int cmp = CompareString(a, b, meta[k]);
        result = cmp != 0 ? cmp : result;
      }
      return result < 0;
    }
  }
};

/// Interpreted fallback for key shapes the "JIT" was not taught: a type
/// switch per value (a real compiled engine would generate this shape too).
struct FallbackComparator {
  std::vector<KeyMeta> meta;
  std::vector<TypeId> types;

  bool operator()(const uint8_t* a, const uint8_t* b) const {
    for (uint64_t k = 0; k < meta.size(); ++k) {
      int cmp = 0;
      switch (types[k]) {
        case TypeId::kBool:
        case TypeId::kInt8:
          cmp = CompareTyped<int8_t>(a, b, meta[k]);
          break;
        case TypeId::kInt16:
          cmp = CompareTyped<int16_t>(a, b, meta[k]);
          break;
        case TypeId::kInt32:
        case TypeId::kDate:
          cmp = CompareTyped<int32_t>(a, b, meta[k]);
          break;
        case TypeId::kInt64:
          cmp = CompareTyped<int64_t>(a, b, meta[k]);
          break;
        case TypeId::kUint32:
          cmp = CompareTyped<uint32_t>(a, b, meta[k]);
          break;
        case TypeId::kUint64:
          cmp = CompareTyped<uint64_t>(a, b, meta[k]);
          break;
        case TypeId::kFloat:
          cmp = CompareTyped<float>(a, b, meta[k]);
          break;
        case TypeId::kDouble:
          cmp = CompareTyped<double>(a, b, meta[k]);
          break;
        case TypeId::kVarchar:
          cmp = CompareString(a, b, meta[k]);
          break;
        case TypeId::kInvalid:
          break;
      }
      if (cmp != 0) return cmp < 0;
    }
    return false;
  }
};

class CompiledRowSystem : public SortSystem {
 public:
  CompiledRowSystem(std::string name, uint64_t threads, bool early_exit)
      : name_(std::move(name)), threads_(std::max<uint64_t>(threads, 1)),
        early_exit_(early_exit) {}

  std::string name() const override { return name_; }

  Table Sort(const Table& input, const SortSpec& spec) override {
    // Materialize the input as NSM rows (a compiled engine's generated
    // structs are "essentially relational data in row data format", §V-A).
    RowLayout layout(input.types());
    RowCollection rows(layout);
    for (uint64_t c = 0; c < input.ChunkCount(); ++c) {
      rows.AppendChunk(input.chunk(c));
    }
    const uint64_t n = rows.row_count();

    // Thread-local pdqsort over row pointers.
    const uint64_t num_runs =
        std::min<uint64_t>(threads_, std::max<uint64_t>(n / 1024, 1));
    std::vector<std::vector<const uint8_t*>> runs(num_runs);
    auto sort_run = [&](uint64_t r) {
      uint64_t begin = n * r / num_runs;
      uint64_t end = n * (r + 1) / num_runs;
      auto& run = runs[r];
      run.resize(end - begin);
      for (uint64_t i = begin; i < end; ++i) run[i - begin] = rows.GetRow(i);
      DispatchSort(run, layout, spec);
    };
    if (num_runs > 1) {
      ThreadPool pool(threads_);
      pool.ParallelFor(num_runs, sort_run);
    } else if (n > 0) {
      sort_run(0);
    }

    // k-way merge on pointers; no data moves until output collection.
    FallbackComparator merge_cmp = MakeFallback(layout, spec);
    std::vector<const uint8_t*> order = KWayMerge(
        runs, [&merge_cmp](const uint8_t* a, const uint8_t* b) {
          return merge_cmp(a, b);
        });

    // Physically collect the payload while reading the output.
    std::vector<uint64_t> indices(order.size());
    const uint64_t width = layout.row_width();
    for (uint64_t i = 0; i < order.size(); ++i) {
      indices[i] = static_cast<uint64_t>(order[i] - rows.data()) / width;
    }
    Table out(input.types(), input.names());
    uint64_t offset = 0;
    while (offset < n) {
      uint64_t count = std::min(kVectorSize, n - offset);
      DataChunk chunk = out.NewChunk();
      rows.GatherRows(indices.data() + offset, count, &chunk);
      out.Append(std::move(chunk));
      offset += count;
    }
    return out;
  }

 private:
  static KeyMeta MakeMeta(const RowLayout& layout, const SortColumn& sc) {
    KeyMeta meta;
    meta.column = sc.column_index;
    meta.offset = layout.ColumnOffset(sc.column_index);
    meta.descending = sc.order == OrderType::kDescending;
    meta.nulls_first = sc.null_order == NullOrder::kNullsFirst;
    return meta;
  }

  static FallbackComparator MakeFallback(const RowLayout& layout,
                                         const SortSpec& spec) {
    FallbackComparator cmp;
    for (const auto& sc : spec.columns()) {
      cmp.meta.push_back(MakeMeta(layout, sc));
      cmp.types.push_back(sc.type.id());
    }
    return cmp;
  }

  template <typename Comparator>
  static void FillMeta(Comparator& cmp, const RowLayout& layout,
                       const SortSpec& spec) {
    for (uint64_t k = 0; k < spec.columns().size(); ++k) {
      cmp.meta[k] = MakeMeta(layout, spec.columns()[k]);
    }
  }

  template <typename T, int K>
  void SortTyped(std::vector<const uint8_t*>& run, const RowLayout& layout,
                 const SortSpec& spec) const {
    if (early_exit_) {
      TypedComparator<T, K, true> cmp;
      FillMeta(cmp, layout, spec);
      PdqSortBranchless(run.begin(), run.end(), cmp);
    } else {
      TypedComparator<T, K, false> cmp;
      FillMeta(cmp, layout, spec);
      PdqSortBranchless(run.begin(), run.end(), cmp);
    }
  }

  template <int K>
  void SortStrings(std::vector<const uint8_t*>& run, const RowLayout& layout,
                   const SortSpec& spec) const {
    if (early_exit_) {
      StringComparator<K, true> cmp;
      FillMeta(cmp, layout, spec);
      PdqSort(run.begin(), run.end(), cmp);
    } else {
      StringComparator<K, false> cmp;
      FillMeta(cmp, layout, spec);
      PdqSort(run.begin(), run.end(), cmp);
    }
  }

  void DispatchSort(std::vector<const uint8_t*>& run, const RowLayout& layout,
                    const SortSpec& spec) const {
    const auto& cols = spec.columns();
    auto all_of_type = [&](TypeId id) {
      for (const auto& sc : cols) {
        if (sc.type.id() != id) return false;
      }
      return true;
    };

    if (all_of_type(TypeId::kInt32) || all_of_type(TypeId::kDate)) {
      switch (cols.size()) {
        case 1:
          return SortTyped<int32_t, 1>(run, layout, spec);
        case 2:
          return SortTyped<int32_t, 2>(run, layout, spec);
        case 3:
          return SortTyped<int32_t, 3>(run, layout, spec);
        case 4:
          return SortTyped<int32_t, 4>(run, layout, spec);
        default:
          break;
      }
    }
    if (cols.size() == 1) {
      switch (cols[0].type.id()) {
        case TypeId::kInt64:
          return SortTyped<int64_t, 1>(run, layout, spec);
        case TypeId::kUint32:
          return SortTyped<uint32_t, 1>(run, layout, spec);
        case TypeId::kUint64:
          return SortTyped<uint64_t, 1>(run, layout, spec);
        case TypeId::kFloat:
          return SortTyped<float, 1>(run, layout, spec);
        case TypeId::kDouble:
          return SortTyped<double, 1>(run, layout, spec);
        default:
          break;
      }
    }
    if (all_of_type(TypeId::kVarchar)) {
      switch (cols.size()) {
        case 1:
          return SortStrings<1>(run, layout, spec);
        case 2:
          return SortStrings<2>(run, layout, spec);
        case 3:
          return SortStrings<3>(run, layout, spec);
        default:
          break;
      }
    }
    // Unanticipated shape: interpreted fallback.
    FallbackComparator cmp = MakeFallback(layout, spec);
    PdqSort(run.begin(), run.end(), cmp);
  }

  std::string name_;
  uint64_t threads_;
  bool early_exit_;
};

}  // namespace

std::unique_ptr<SortSystem> MakeHyPerLike(uint64_t threads) {
  return std::make_unique<CompiledRowSystem>("HyPer-like", threads, true);
}

std::unique_ptr<SortSystem> MakeUmbraLike(uint64_t threads) {
  return std::make_unique<CompiledRowSystem>("Umbra-like", threads, false);
}

}  // namespace rowsort
