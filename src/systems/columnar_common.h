// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>
#include <vector>

#include "sortkey/sort_spec.h"
#include "vector/string_heap.h"
#include "workload/tables.h"

namespace rowsort {

/// \brief A table materialized as flat columns (DSM), the internal format of
/// the columnar systems under benchmark (ClickHouse-like, MonetDB-like).
struct MaterializedColumns {
  std::vector<LogicalType> types;
  std::vector<std::string> names;
  /// data[c] holds count * FixedSize(c) bytes.
  std::vector<std::vector<uint8_t>> data;
  /// validity[c] is empty (all valid) or holds one byte per row (1 = valid).
  std::vector<std::vector<uint8_t>> validity;
  StringHeap heap;  ///< owns non-inlined varchar payloads
  uint64_t count = 0;

  bool RowIsValid(uint64_t col, uint64_t row) const {
    return validity[col].empty() || validity[col][row] != 0;
  }
};

/// Copies \p input into flat columns.
MaterializedColumns MaterializeColumns(const Table& input);

/// Gathers the columns in \p order into a Table (the columnar systems'
/// payload collection step).
Table GatherToTable(const MaterializedColumns& cols,
                    const std::vector<uint64_t>& order);

/// \brief Interpreted tuple-at-a-time comparator over materialized columns:
/// every comparison walks the key columns, causing one random access per
/// column touched (the DSM penalty of §IV-A), with NULL ordering and
/// ASC/DESC applied per column.
class ColumnarTupleComparator {
 public:
  ColumnarTupleComparator(const MaterializedColumns& cols,
                          const SortSpec& spec);

  /// Three-way ORDER BY comparison of rows \p a and \p b.
  int Compare(uint64_t a, uint64_t b) const;

  /// Comparison on key column \p k only (the subsort building block).
  int CompareColumn(uint64_t k, uint64_t a, uint64_t b) const;

  bool Less(uint64_t a, uint64_t b) const { return Compare(a, b) < 0; }

  uint64_t KeyColumnCount() const { return spec_->columns().size(); }

 private:
  const MaterializedColumns* cols_;
  const SortSpec* spec_;
};

}  // namespace rowsort
