// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "sortalgo/row_sort.h"

#include <vector>

namespace rowsort {
namespace row_sort_detail {

void ApplyRowPermutation(uint8_t* rows, uint64_t count, uint64_t row_width,
                         const std::vector<uint8_t*>& ptrs) {
  std::vector<uint8_t> tmp(row_width);
  std::vector<uint64_t> target(count);
  for (uint64_t i = 0; i < count; ++i) {
    target[i] = static_cast<uint64_t>(ptrs[i] - rows) / row_width;
  }
  std::vector<bool> done(count, false);
  for (uint64_t i = 0; i < count; ++i) {
    if (done[i] || target[i] == i) {
      done[i] = true;
      continue;
    }
    // Cycle starting at position i: slot i should receive row target[i].
    RowCopy(tmp.data(), rows + i * row_width, row_width);
    uint64_t hole = i;
    uint64_t src = target[i];
    while (src != i) {
      RowCopy(rows + hole * row_width, rows + src * row_width, row_width);
      done[hole] = true;
      hole = src;
      src = target[src];
    }
    RowCopy(rows + hole * row_width, tmp.data(), row_width);
    done[hole] = true;
  }
}

void PdqSortRowsIndirect(uint8_t* rows, uint64_t count, uint64_t row_width,
                         uint64_t cmp_offset, uint64_t cmp_width) {
  std::vector<uint8_t*> ptrs(count);
  for (uint64_t i = 0; i < count; ++i) ptrs[i] = rows + i * row_width;
  PdqSortBranchless(ptrs.begin(), ptrs.end(),
                    [&](const uint8_t* a, const uint8_t* b) {
                      return std::memcmp(a + cmp_offset, b + cmp_offset,
                                         cmp_width) < 0;
                    });
  ApplyRowPermutation(rows, count, row_width, ptrs);
}

}  // namespace row_sort_detail
}  // namespace rowsort
