// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <iterator>
#include <utility>

namespace rowsort {

/// \brief Classic insertion sort; the base case of introsort, pdqsort, and
/// MSD radix sort (paper §VI-B: "MSD radix sort that recurses to insertion
/// sort for buckets with <= 24 tuples").
template <typename It, typename Compare>
void InsertionSort(It begin, It end, Compare comp) {
  if (begin == end) return;
  for (It cur = begin + 1; cur != end; ++cur) {
    It sift = cur;
    It sift_1 = cur - 1;
    if (comp(*sift, *sift_1)) {
      auto tmp = std::move(*sift);
      do {
        *sift-- = std::move(*sift_1);
      } while (sift != begin && comp(tmp, *--sift_1));
      *sift = std::move(tmp);
    }
  }
}

/// Insertion sort that assumes *(begin-1) is a sentinel <= every element in
/// [begin, end); skips the bounds check in the inner loop.
template <typename It, typename Compare>
void UnguardedInsertionSort(It begin, It end, Compare comp) {
  if (begin == end) return;
  for (It cur = begin + 1; cur != end; ++cur) {
    It sift = cur;
    It sift_1 = cur - 1;
    if (comp(*sift, *sift_1)) {
      auto tmp = std::move(*sift);
      do {
        *sift-- = std::move(*sift_1);
      } while (comp(tmp, *--sift_1));
      *sift = std::move(tmp);
    }
  }
}

}  // namespace rowsort
