// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>
#include <iterator>
#include <utility>

#include "common/bit_util.h"
#include "sortalgo/heap_sort.h"
#include "sortalgo/insertion_sort.h"

namespace rowsort {

/// \brief Pattern-defeating quicksort (Peters 2021), implemented from scratch.
///
/// The paper (§VI-B) picks pdqsort as the state-of-the-art comparison sort to
/// pit against radix sort on normalized keys. Its defining features, all
/// implemented here:
///  * insertion sort for small partitions;
///  * median-of-3 pivot selection (ninther for large partitions);
///  * detection of already-/reverse-partitioned inputs via an optimistic
///    bounded partial insertion sort ("pattern defeating");
///  * partition-left for inputs with many equal keys (O(n) on all-equal);
///  * branchless block partitioning from BlockQuickSort (Edelkamp & Weiss
///    2019) to avoid branch mispredictions — enabled when the comparator is
///    branchless-friendly (\p Branchless template flag);
///  * shuffling + heapsort fallback when partitions are consistently bad.
namespace pdq_detail {

constexpr int64_t kInsertionSortThreshold = 24;
constexpr int64_t kNintherThreshold = 128;
constexpr int64_t kPartialInsertionSortLimit = 8;
constexpr int64_t kBlockSize = 64;
constexpr int64_t kCachelineSize = 64;

template <typename It, typename Compare>
void Sort2(It a, It b, Compare comp) {
  if (comp(*b, *a)) std::swap(*a, *b);
}

template <typename It, typename Compare>
void Sort3(It a, It b, It c, Compare comp) {
  Sort2(a, b, comp);
  Sort2(b, c, comp);
  Sort2(a, b, comp);
}

/// Attempts to sort [begin, end) with insertion sort, giving up after
/// kPartialInsertionSortLimit element moves. Returns true when the range is
/// fully sorted. Defeats "nearly sorted" patterns in O(n).
template <typename It, typename Compare>
bool PartialInsertionSort(It begin, It end, Compare comp) {
  if (begin == end) return true;
  int64_t limit = 0;
  for (It cur = begin + 1; cur != end; ++cur) {
    It sift = cur;
    It sift_1 = cur - 1;
    if (comp(*sift, *sift_1)) {
      auto tmp = std::move(*sift);
      do {
        *sift-- = std::move(*sift_1);
      } while (sift != begin && comp(tmp, *--sift_1));
      *sift = std::move(tmp);
      limit += cur - sift;
    }
    if (limit > kPartialInsertionSortLimit) return false;
  }
  return true;
}

/// Partitions [begin, end) around *begin using Hoare crossing scans.
/// Returns (pivot position, was the input already partitioned?).
template <typename It, typename Compare>
std::pair<It, bool> PartitionRight(It begin, It end, Compare comp) {
  auto pivot = std::move(*begin);
  It first = begin;
  It last = end;

  // The median-of-3 guarantees an element >= pivot on the left and <= pivot
  // on the right, so these scans are unguarded.
  while (comp(*++first, pivot)) {
  }
  if (first - 1 == begin) {
    while (first < last && !comp(*--last, pivot)) {
    }
  } else {
    while (!comp(*--last, pivot)) {
    }
  }

  bool already_partitioned = first >= last;
  while (first < last) {
    std::swap(*first, *last);
    while (comp(*++first, pivot)) {
    }
    while (!comp(*--last, pivot)) {
    }
  }

  It pivot_pos = first - 1;
  *begin = std::move(*pivot_pos);
  *pivot_pos = std::move(pivot);
  return {pivot_pos, already_partitioned};
}

/// Branchless variant of PartitionRight using BlockQuickSort offset buffers:
/// comparison results are turned into offset-array writes instead of
/// conditional swaps, so the hot loop has no data-dependent branches.
template <typename It, typename Compare>
std::pair<It, bool> PartitionRightBranchless(It begin, It end, Compare comp) {
  auto pivot = std::move(*begin);
  It first = begin;
  It last = end;

  while (comp(*++first, pivot)) {
  }
  if (first - 1 == begin) {
    while (first < last && !comp(*--last, pivot)) {
    }
  } else {
    while (!comp(*--last, pivot)) {
    }
  }

  bool already_partitioned = first >= last;
  if (!already_partitioned) {
    std::swap(*first, *last);
    ++first;
  }

  alignas(kCachelineSize) unsigned char offsets_l_storage[kBlockSize];
  alignas(kCachelineSize) unsigned char offsets_r_storage[kBlockSize];
  unsigned char* offsets_l = offsets_l_storage;
  unsigned char* offsets_r = offsets_r_storage;
  int64_t num_l = 0, num_r = 0, start_l = 0, start_r = 0;

  while (last - first > 2 * kBlockSize) {
    if (num_l == 0) {
      start_l = 0;
      It it = first;
      for (int64_t i = 0; i < kBlockSize; ++i) {
        offsets_l[num_l] = static_cast<unsigned char>(i);
        num_l += !comp(*it, pivot);  // branchless accumulate
        ++it;
      }
    }
    if (num_r == 0) {
      start_r = 0;
      It it = last;
      for (int64_t i = 0; i < kBlockSize; ++i) {
        --it;
        offsets_r[num_r] = static_cast<unsigned char>(i);
        num_r += comp(*it, pivot);
      }
    }

    int64_t num = std::min(num_l, num_r);
    for (int64_t i = 0; i < num; ++i) {
      std::swap(*(first + offsets_l[start_l + i]),
                *(last - 1 - offsets_r[start_r + i]));
    }
    num_l -= num;
    num_r -= num;
    start_l += num;
    start_r += num;
    if (num_l == 0) first += kBlockSize;
    if (num_r == 0) last -= kBlockSize;
  }

  // At most one side has unmatched offsets left. Compact that block so its
  // classified elements sit contiguously, shrink the gap accordingly, and let
  // the guarded crossing scans below finish the (O(block) sized) remainder.
  if (num_l) {
    // offsets_l[start_l..start_l+num_l) are increasing positions of >= pivot
    // elements inside [first, first + kBlockSize). Move them to the block's
    // back, processing largest offset first so targets are never disturbed.
    int64_t back = kBlockSize;
    for (int64_t i = num_l - 1; i >= 0; --i) {
      --back;
      int64_t off = offsets_l[start_l + i];
      if (off != back) std::swap(*(first + off), *(first + back));
    }
    first += kBlockSize - num_l;  // leading part of the block is < pivot
  }
  if (num_r) {
    // Mirror image: unmatched < pivot elements inside (last - kBlockSize,
    // last]; move them to the block's front (largest offset = leftmost).
    int64_t front = kBlockSize;
    for (int64_t i = num_r - 1; i >= 0; --i) {
      --front;
      int64_t off = offsets_r[start_r + i];
      if (off != front) std::swap(*(last - 1 - off), *(last - 1 - front));
    }
    last -= kBlockSize - num_r;  // trailing part of the block is >= pivot
  }
  {
    It it_first = first;
    It it_last = last;
    while (true) {
      while (it_first < it_last && comp(*it_first, pivot)) ++it_first;
      while (it_first < it_last && !comp(*(it_last - 1), pivot)) --it_last;
      if (it_first >= it_last) break;
      std::swap(*it_first, *(it_last - 1));
      ++it_first;
      --it_last;
    }
    first = it_first;
  }

  It pivot_pos = first - 1;
  *begin = std::move(*pivot_pos);
  *pivot_pos = std::move(pivot);
  return {pivot_pos, already_partitioned};
}

/// Partitions [begin, end) so elements equal to *begin go left: used when the
/// chosen pivot equals its predecessor, which indicates many duplicates.
/// Returns the position one past the equal range.
template <typename It, typename Compare>
It PartitionLeft(It begin, It end, Compare comp) {
  auto pivot = std::move(*begin);
  It first = begin;
  It last = end;

  while (comp(pivot, *--last)) {
  }
  if (last + 1 == end) {
    while (first < last && !comp(pivot, *++first)) {
    }
  } else {
    while (!comp(pivot, *++first)) {
    }
  }

  while (first < last) {
    std::swap(*first, *last);
    while (comp(pivot, *--last)) {
    }
    while (!comp(pivot, *++first)) {
    }
  }

  It pivot_pos = last;
  *begin = std::move(*pivot_pos);
  *pivot_pos = std::move(pivot);
  return pivot_pos;
}

template <bool Branchless, typename It, typename Compare>
void PdqSortLoop(It begin, It end, Compare comp, int bad_allowed,
                 bool leftmost = true) {
  using Diff = typename std::iterator_traits<It>::difference_type;

  while (true) {
    Diff size = end - begin;

    if (size < kInsertionSortThreshold) {
      if (leftmost) {
        InsertionSort(begin, end, comp);
      } else {
        UnguardedInsertionSort(begin, end, comp);
      }
      return;
    }

    // Pivot selection: median of 3 (ninther for large ranges); also sorts
    // the sampled elements, establishing the unguarded-scan sentinels.
    Diff half = size / 2;
    if (size > kNintherThreshold) {
      Sort3(begin, begin + half, end - 1, comp);
      Sort3(begin + 1, begin + (half - 1), end - 2, comp);
      Sort3(begin + 2, begin + (half + 1), end - 3, comp);
      Sort3(begin + (half - 1), begin + half, begin + (half + 1), comp);
      std::swap(*begin, *(begin + half));
    } else {
      Sort3(begin + half, begin, end - 1, comp);
    }

    // Many-duplicates defense: if the pivot equals the element before this
    // partition, partition-left consumes the whole equal range in O(n).
    if (!leftmost && !comp(*(begin - 1), *begin)) {
      begin = PartitionLeft(begin, end, comp) + 1;
      continue;
    }

    auto [pivot_pos, already_partitioned] =
        Branchless ? PartitionRightBranchless(begin, end, comp)
                   : PartitionRight(begin, end, comp);

    Diff l_size = pivot_pos - begin;
    Diff r_size = end - (pivot_pos + 1);
    bool highly_unbalanced = l_size < size / 8 || r_size < size / 8;

    if (highly_unbalanced) {
      if (--bad_allowed == 0) {
        HeapSort(begin, end, comp);
        return;
      }
      // Shuffle some elements to break the adversarial pattern.
      if (l_size >= kInsertionSortThreshold) {
        std::swap(*begin, *(begin + l_size / 4));
        std::swap(*(pivot_pos - 1), *(pivot_pos - l_size / 4));
        if (l_size > kNintherThreshold) {
          std::swap(*(begin + 1), *(begin + (l_size / 4 + 1)));
          std::swap(*(begin + 2), *(begin + (l_size / 4 + 2)));
          std::swap(*(pivot_pos - 2), *(pivot_pos - (l_size / 4 + 1)));
          std::swap(*(pivot_pos - 3), *(pivot_pos - (l_size / 4 + 2)));
        }
      }
      if (r_size >= kInsertionSortThreshold) {
        std::swap(*(pivot_pos + 1), *(pivot_pos + (1 + r_size / 4)));
        std::swap(*(end - 1), *(end - r_size / 4));
        if (r_size > kNintherThreshold) {
          std::swap(*(pivot_pos + 2), *(pivot_pos + (2 + r_size / 4)));
          std::swap(*(pivot_pos + 3), *(pivot_pos + (3 + r_size / 4)));
          std::swap(*(end - 2), *(end - (1 + r_size / 4)));
          std::swap(*(end - 3), *(end - (2 + r_size / 4)));
        }
      }
    } else if (already_partitioned &&
               PartialInsertionSort(begin, pivot_pos, comp) &&
               PartialInsertionSort(pivot_pos + 1, end, comp)) {
      // Pattern defeated: the range was (nearly) sorted already.
      return;
    }

    // Recurse into the left side, loop on the right (O(log n) stack).
    PdqSortLoop<Branchless>(begin, pivot_pos, comp, bad_allowed, leftmost);
    begin = pivot_pos + 1;
    leftmost = false;
  }
}

}  // namespace pdq_detail

/// Sorts [begin, end) with pattern-defeating quicksort; not stable.
/// Uses the branching partition, appropriate for expensive comparators.
template <typename It, typename Compare>
void PdqSort(It begin, It end, Compare comp) {
  if (end - begin < 2) return;
  int depth = bit_util::Log2Floor(static_cast<uint64_t>(end - begin));
  pdq_detail::PdqSortLoop<false>(begin, end, comp, depth);
}

/// Sorts [begin, end) using the BlockQuickSort branchless partition; best for
/// cheap branchless comparators (integers, memcmp of short keys).
template <typename It, typename Compare>
void PdqSortBranchless(It begin, It end, Compare comp) {
  if (end - begin < 2) return;
  int depth = bit_util::Log2Floor(static_cast<uint64_t>(end - begin));
  pdq_detail::PdqSortLoop<true>(begin, end, comp, depth);
}

template <typename It>
void PdqSort(It begin, It end) {
  PdqSort(begin, end, [](const auto& a, const auto& b) { return a < b; });
}

}  // namespace rowsort
