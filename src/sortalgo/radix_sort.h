// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>
#include <functional>

#include "common/status.h"
#include "common/trace.h"

namespace rowsort {

/// \brief Configuration for radix-sorting fixed-width binary rows whose sort
/// key is an order-preserving byte string (a normalized key, paper §VI-A),
/// so that byte-wise distribution yields the correct order (§VI-B).
struct RadixSortConfig {
  uint64_t row_width = 0;   ///< bytes per row (key + any trailing payload)
  uint64_t key_offset = 0;  ///< byte offset of the normalized key in the row
  uint64_t key_width = 0;   ///< bytes of normalized key to sort by

  /// Buckets holding at most this many rows are finished with insertion sort
  /// (paper: "MSD radix sort that recurses to insertion sort for buckets
  /// with <= 24 tuples").
  uint64_t insertion_threshold = 24;

  /// LSD is chosen when key_width <= this bound, MSD otherwise (paper §VI-B:
  /// "LSD radix sort is selected when the key size is <= 4 bytes").
  uint64_t lsd_key_width_bound = 4;

  /// Issue software prefetches in the counting and scatter passes
  /// (row/row_kernels.h): the counting scan reads ahead of its cursor, the
  /// scatter passes additionally prime the store target of the row
  /// kScatterPrefetchDistance iterations ahead. Off = the plain loops (the
  /// engine forwards SortEngineConfig::use_movement_kernels here).
  bool prefetch = true;

  /// Cooperative cancellation hook, invoked once per O(count) pass (LSD
  /// scatter pass, MSD counting pass) — never per row. The hook signals by
  /// throwing (e.g. CancelledError), unwinding the sort mid-pass; the rows
  /// are then in an unspecified permutation but remain valid rows. Empty =
  /// no checks.
  std::function<void()> cancellation_check;

  /// Optional span tracer (docs/observability.md): the fused LSD counting
  /// scan, each LSD scatter pass, and the top-level MSD recursion record
  /// spans on the sorting thread's track. Null = no tracing.
  Tracer* trace = nullptr;
};

/// Counters the radix sorts report for the ablation/diagnostic benches.
struct RadixSortStats {
  uint64_t passes = 0;          ///< counting passes actually executed
  uint64_t skipped_passes = 0;  ///< passes skipped by the one-bucket shortcut
  uint64_t insertion_sorts = 0; ///< small-bucket insertion-sort calls
  uint64_t rows_moved = 0;      ///< row copies performed
};

/// Least-significant-digit radix sort: all per-digit histograms are counted
/// in one fused scan over the rows, then one stable scatter pass runs per
/// key byte from last to first. Needs \p aux of the same size as \p rows;
/// the sorted result is always left in \p rows. The one-bucket optimization
/// skips the data movement of a pass whose byte is constant (paper §VI-B).
void RadixSortLsd(uint8_t* rows, uint8_t* aux, uint64_t count,
                  const RadixSortConfig& config,
                  RadixSortStats* stats = nullptr);

/// Most-significant-digit radix sort: recursive bucketing from the first key
/// byte, recursing to insertion sort for small buckets. Needs \p aux like
/// RadixSortLsd; the result is left in \p rows.
void RadixSortMsd(uint8_t* rows, uint8_t* aux, uint64_t count,
                  const RadixSortConfig& config,
                  RadixSortStats* stats = nullptr);

/// Paper's dispatch: LSD for short keys (<= lsd_key_width_bound), else MSD.
void RadixSort(uint8_t* rows, uint8_t* aux, uint64_t count,
               const RadixSortConfig& config, RadixSortStats* stats = nullptr);

/// Future-work variant (§IX): MSD radix sort that hands small buckets to
/// pdqsort-with-memcmp instead of insertion sort, with a larger threshold.
void RadixSortMsdWithPdq(uint8_t* rows, uint8_t* aux, uint64_t count,
                         const RadixSortConfig& config,
                         uint64_t pdq_threshold = 512,
                         RadixSortStats* stats = nullptr);

}  // namespace rowsort
