// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <iterator>
#include <utility>

namespace rowsort {

namespace detail {

template <typename It, typename Compare>
void SiftDown(It begin, typename std::iterator_traits<It>::difference_type len,
              typename std::iterator_traits<It>::difference_type root,
              Compare comp) {
  using Diff = typename std::iterator_traits<It>::difference_type;
  auto value = std::move(*(begin + root));
  Diff hole = root;
  while (true) {
    Diff child = 2 * hole + 1;
    if (child >= len) break;
    if (child + 1 < len && comp(*(begin + child), *(begin + child + 1))) {
      ++child;
    }
    if (!comp(value, *(begin + child))) break;
    *(begin + hole) = std::move(*(begin + child));
    hole = child;
  }
  *(begin + hole) = std::move(value);
}

}  // namespace detail

/// \brief Bottom-up heapsort: the O(n log n) worst-case fallback of introsort
/// and pdqsort when quicksort recursion degenerates.
template <typename It, typename Compare>
void HeapSort(It begin, It end, Compare comp) {
  using Diff = typename std::iterator_traits<It>::difference_type;
  Diff len = end - begin;
  if (len < 2) return;
  for (Diff root = len / 2 - 1; root >= 0; --root) {
    detail::SiftDown(begin, len, root, comp);
  }
  for (Diff last = len - 1; last > 0; --last) {
    std::swap(*begin, *(begin + last));
    detail::SiftDown(begin, last, Diff(0), comp);
  }
}

}  // namespace rowsort
