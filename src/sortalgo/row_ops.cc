// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "sortalgo/row_ops.h"

#include <vector>

namespace rowsort {

void RowInsertionSort(uint8_t* rows, uint64_t count, uint64_t row_width,
                      uint64_t cmp_offset, uint64_t cmp_width) {
  if (count < 2) return;
  std::vector<uint8_t> tmp(row_width);
  for (uint64_t i = 1; i < count; ++i) {
    uint8_t* cur = rows + i * row_width;
    if (std::memcmp(cur + cmp_offset, cur - row_width + cmp_offset,
                    cmp_width) < 0) {
      RowCopy(tmp.data(), cur, row_width);
      uint64_t j = i;
      do {
        RowCopy(rows + j * row_width, rows + (j - 1) * row_width, row_width);
        --j;
      } while (j > 0 && std::memcmp(tmp.data() + cmp_offset,
                                    rows + (j - 1) * row_width + cmp_offset,
                                    cmp_width) < 0);
      RowCopy(rows + j * row_width, tmp.data(), row_width);
    }
  }
}

bool RowsAreSorted(const uint8_t* rows, uint64_t count, uint64_t row_width,
                   uint64_t cmp_offset, uint64_t cmp_width) {
  for (uint64_t i = 1; i < count; ++i) {
    const uint8_t* prev = rows + (i - 1) * row_width + cmp_offset;
    const uint8_t* cur = rows + i * row_width + cmp_offset;
    if (std::memcmp(prev, cur, cmp_width) > 0) return false;
  }
  return true;
}

}  // namespace rowsort
