// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>
#include <cstring>

#include "common/macros.h"

namespace rowsort {

/// \file row_ops.h
/// Primitives for operating on arrays of fixed-width binary rows (NSM):
/// runtime-width copy/swap and an insertion sort that moves whole rows, used
/// as the recursion base of MSD radix sort (paper §VI-B).

/// Maximum fixed row width the row sorting fast paths are compiled for;
/// wider rows use the pointer-indirection fallback.
constexpr uint64_t kMaxFixedRowWidth = 256;

/// Copies one row of \p width bytes.
inline void RowCopy(uint8_t* dst, const uint8_t* src, uint64_t width) {
  std::memcpy(dst, src, width);
}

/// Swaps two rows of \p width bytes through a stack buffer.
inline void RowSwap(uint8_t* a, uint8_t* b, uint64_t width) {
  uint8_t tmp[kMaxFixedRowWidth];
  // Rows up to kMaxFixedRowWidth (every key-row layout the engine builds)
  // swap in one three-memcpy pass with no loop entered.
  if (ROWSORT_LIKELY(width <= kMaxFixedRowWidth)) {
    std::memcpy(tmp, a, width);
    std::memcpy(a, b, width);
    std::memcpy(b, tmp, width);
    return;
  }
  // Wider rows go chunk by chunk through the same buffer: full
  // kMaxFixedRowWidth chunks first, then one pass for the residual tail
  // (width is strictly positive here, so the tail pass is never empty for
  // widths that are not a multiple of the chunk size, and swaps the final
  // full chunk otherwise).
  do {
    std::memcpy(tmp, a, kMaxFixedRowWidth);
    std::memcpy(a, b, kMaxFixedRowWidth);
    std::memcpy(b, tmp, kMaxFixedRowWidth);
    a += kMaxFixedRowWidth;
    b += kMaxFixedRowWidth;
    width -= kMaxFixedRowWidth;
  } while (width > kMaxFixedRowWidth);
  std::memcpy(tmp, a, width);
  std::memcpy(a, b, width);
  std::memcpy(b, tmp, width);
}

/// Insertion sort over \p count rows of \p row_width bytes, ordered by
/// memcmp of \p cmp_width bytes starting at \p cmp_offset within each row.
/// Rows are physically moved (memcpy), exactly like the engine's base case.
void RowInsertionSort(uint8_t* rows, uint64_t count, uint64_t row_width,
                      uint64_t cmp_offset, uint64_t cmp_width);

/// True when the \p count rows are non-decreasing under the same comparison
/// as RowInsertionSort (verification helper for tests).
bool RowsAreSorted(const uint8_t* rows, uint64_t count, uint64_t row_width,
                   uint64_t cmp_offset, uint64_t cmp_width);

}  // namespace rowsort
