// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <iterator>
#include <memory>
#include <utility>
#include <vector>

#include "sortalgo/insertion_sort.h"

namespace rowsort {

/// \brief Stable bottom-up merge sort with a full auxiliary buffer; the
/// from-scratch stand-in for std::stable_sort in the micro-benchmarks
/// (paper §III replicates every experiment with a merge-sort-based stable
/// sort because "merge sort uses primarily sequential data access").
template <typename It, typename Compare>
void StableMergeSort(It begin, It end, Compare comp) {
  using T = typename std::iterator_traits<It>::value_type;
  using Diff = typename std::iterator_traits<It>::difference_type;
  Diff len = end - begin;
  if (len < 2) return;

  constexpr Diff kRunSize = 32;
  // Seed with insertion-sorted runs (stable).
  for (Diff lo = 0; lo < len; lo += kRunSize) {
    Diff hi = std::min(lo + kRunSize, len);
    InsertionSort(begin + lo, begin + hi, comp);
  }
  if (len <= kRunSize) return;

  std::vector<T> buffer(begin, end);
  T* src = buffer.data();
  bool data_in_buffer = false;  // tracks which array holds the current runs

  // Bottom-up merging, ping-ponging between the input range and the buffer.
  auto merge_pass = [&](auto* from, auto* to, Diff width) {
    for (Diff lo = 0; lo < len; lo += 2 * width) {
      Diff mid = std::min(lo + width, len);
      Diff hi = std::min(lo + 2 * width, len);
      Diff left = lo, right = mid, out = lo;
      while (left < mid && right < hi) {
        // Stable: take from the left run on ties.
        if (comp(from[right], from[left])) {
          to[out++] = std::move(from[right++]);
        } else {
          to[out++] = std::move(from[left++]);
        }
      }
      while (left < mid) to[out++] = std::move(from[left++]);
      while (right < hi) to[out++] = std::move(from[right++]);
    }
  };

  T* in_place = &*begin;
  for (Diff width = kRunSize; width < len; width *= 2) {
    if (data_in_buffer) {
      merge_pass(src, in_place, width);
    } else {
      merge_pass(in_place, src, width);
    }
    data_in_buffer = !data_in_buffer;
  }
  if (data_in_buffer) {
    std::move(src, src + len, begin);
  }
}

template <typename It>
void StableMergeSort(It begin, It end) {
  StableMergeSort(begin, end,
                  [](const auto& a, const auto& b) { return a < b; });
}

}  // namespace rowsort
