// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <iterator>
#include <utility>

#include "common/bit_util.h"
#include "sortalgo/heap_sort.h"
#include "sortalgo/insertion_sort.h"

namespace rowsort {

/// \brief Introspective sort (Musser 1997): median-of-three quicksort with a
/// depth limit that falls back to heapsort, plus insertion sort for small
/// ranges. This is the from-scratch stand-in for std::sort used by the
/// micro-benchmarks (paper §III: "All of the approaches use std::sort, an
/// introspective sort implementation").
namespace introsort_detail {

constexpr int kInsertionThreshold = 16;

template <typename It, typename Compare>
It MedianOfThree(It a, It b, It c, Compare comp) {
  if (comp(*a, *b)) {
    if (comp(*b, *c)) return b;
    return comp(*a, *c) ? c : a;
  }
  if (comp(*a, *c)) return a;
  return comp(*b, *c) ? c : b;
}

// Hoare-style partition around the median-of-three pivot; returns the split.
template <typename It, typename Compare>
It Partition(It begin, It end, Compare comp) {
  It mid = begin + (end - begin) / 2;
  It pivot_it = MedianOfThree(begin, mid, end - 1, comp);
  std::swap(*begin, *pivot_it);
  auto& pivot = *begin;

  It left = begin;
  It right = end;
  while (true) {
    do {
      ++left;
    } while (left != end && comp(*left, pivot));
    do {
      --right;
    } while (comp(pivot, *right));
    if (left >= right) break;
    std::swap(*left, *right);
  }
  std::swap(*begin, *right);
  return right;
}

template <typename It, typename Compare>
void IntroSortLoop(It begin, It end, int depth_limit, Compare comp) {
  while (end - begin > kInsertionThreshold) {
    if (depth_limit == 0) {
      HeapSort(begin, end, comp);
      return;
    }
    --depth_limit;
    It split = Partition(begin, end, comp);
    // Recurse into the smaller side; loop on the larger (O(log n) stack).
    if (split - begin < end - (split + 1)) {
      IntroSortLoop(begin, split, depth_limit, comp);
      begin = split + 1;
    } else {
      IntroSortLoop(split + 1, end, depth_limit, comp);
      end = split;
    }
  }
}

}  // namespace introsort_detail

/// Sorts [begin, end) with introsort; not stable.
template <typename It, typename Compare>
void IntroSort(It begin, It end, Compare comp) {
  auto len = end - begin;
  if (len < 2) return;
  int depth_limit = 2 * bit_util::Log2Floor(static_cast<uint64_t>(len));
  introsort_detail::IntroSortLoop(begin, end, depth_limit, comp);
  InsertionSort(begin, end, comp);
}

template <typename It>
void IntroSort(It begin, It end) {
  IntroSort(begin, end, [](const auto& a, const auto& b) { return a < b; });
}

}  // namespace rowsort
