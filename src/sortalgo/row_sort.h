// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/macros.h"
#include "sortalgo/pdq_sort.h"
#include "sortalgo/row_ops.h"

namespace rowsort {

/// \file row_sort.h
/// Comparison-sorting fixed-width binary rows without JIT compilation.
///
/// The paper (§VI-A) observes that an interpreted engine "cannot generate a
/// struct such as OrderKey without JIT compilation" and must move keys with
/// memcpy and compare them with memcmp. The closest static equivalent is to
/// pre-instantiate the sort over a small set of row widths (all multiples of
/// 8, matching the engine's 8-byte row alignment) and dispatch at runtime:
/// inside each instantiation, moves compile to fixed-size copies while the
/// comparator stays a *dynamic* memcmp whose length is a runtime parameter —
/// exactly the "pdqsort uses memcmp dynamically" setup of Fig. 9.

namespace row_sort_detail {

/// Trivially copyable row of W bytes; assignment is a fixed-size copy.
template <uint64_t W>
struct RowBlob {
  uint8_t bytes[W];
};

/// Dynamic memcmp comparator over a row prefix (the normalized key).
template <uint64_t W>
struct RowLess {
  uint64_t cmp_offset;
  uint64_t cmp_width;
  bool operator()(const RowBlob<W>& a, const RowBlob<W>& b) const {
    return std::memcmp(a.bytes + cmp_offset, b.bytes + cmp_offset,
                       cmp_width) < 0;
  }
};

template <uint64_t W>
void PdqSortRowsFixed(uint8_t* rows, uint64_t count, uint64_t cmp_offset,
                      uint64_t cmp_width) {
  auto* blobs = reinterpret_cast<RowBlob<W>*>(rows);
  PdqSortBranchless(blobs, blobs + count, RowLess<W>{cmp_offset, cmp_width});
}

/// Fallback for rows wider than every pre-instantiated width: sort pointers,
/// then apply the permutation with a cycle walk (O(n) extra pointer memory).
void PdqSortRowsIndirect(uint8_t* rows, uint64_t count, uint64_t row_width,
                         uint64_t cmp_offset, uint64_t cmp_width);

/// Reorders \p rows so that row i ends up holding the row \p ptrs[i] pointed
/// to before the call (cycle-walk, each row copied once). \p ptrs must be a
/// permutation of the row start pointers.
void ApplyRowPermutation(uint8_t* rows, uint64_t count, uint64_t row_width,
                         const std::vector<uint8_t*>& ptrs);

template <uint64_t W, typename Less>
void PdqSortRowsWithFixed(uint8_t* rows, uint64_t count, Less less) {
  auto* blobs = reinterpret_cast<RowBlob<W>*>(rows);
  PdqSort(blobs, blobs + count, [&less](const RowBlob<W>& a,
                                        const RowBlob<W>& b) {
    return less(a.bytes, b.bytes);
  });
}

}  // namespace row_sort_detail

/// Sorts rows with an arbitrary comparator \p less(const uint8_t* row_a,
/// const uint8_t* row_b) -> bool. Used when memcmp alone cannot order the
/// rows (VARCHAR prefix tie resolution). Rows are physically moved on the
/// fast path; the pointer-sort fallback applies the permutation afterwards.
template <typename Less>
void PdqSortRowsWith(uint8_t* rows, uint64_t count, uint64_t row_width,
                     Less less) {
  using namespace row_sort_detail;
  switch (row_width) {
    case 8:
      return PdqSortRowsWithFixed<8>(rows, count, less);
    case 16:
      return PdqSortRowsWithFixed<16>(rows, count, less);
    case 24:
      return PdqSortRowsWithFixed<24>(rows, count, less);
    case 32:
      return PdqSortRowsWithFixed<32>(rows, count, less);
    case 40:
      return PdqSortRowsWithFixed<40>(rows, count, less);
    case 48:
      return PdqSortRowsWithFixed<48>(rows, count, less);
    case 56:
      return PdqSortRowsWithFixed<56>(rows, count, less);
    case 64:
      return PdqSortRowsWithFixed<64>(rows, count, less);
    case 80:
      return PdqSortRowsWithFixed<80>(rows, count, less);
    case 96:
      return PdqSortRowsWithFixed<96>(rows, count, less);
    case 128:
      return PdqSortRowsWithFixed<128>(rows, count, less);
    default: {
      std::vector<uint8_t*> ptrs(count);
      for (uint64_t i = 0; i < count; ++i) ptrs[i] = rows + i * row_width;
      PdqSort(ptrs.begin(), ptrs.end(),
              [&less](const uint8_t* a, const uint8_t* b) {
                return less(a, b);
              });
      ApplyRowPermutation(rows, count, row_width, ptrs);
      return;
    }
  }
}

/// Sorts \p count rows of \p row_width bytes by memcmp of the
/// [cmp_offset, cmp_offset + cmp_width) byte range, physically moving rows.
/// \p row_width must be a multiple of 8 for the fast path; other widths (and
/// widths > kMaxFixedRowWidth) take the pointer-indirection fallback.
inline void PdqSortRows(uint8_t* rows, uint64_t count, uint64_t row_width,
                        uint64_t cmp_offset, uint64_t cmp_width) {
  ROWSORT_DASSERT(cmp_offset + cmp_width <= row_width);
  using namespace row_sort_detail;
  switch (row_width) {
    case 8:
      return PdqSortRowsFixed<8>(rows, count, cmp_offset, cmp_width);
    case 16:
      return PdqSortRowsFixed<16>(rows, count, cmp_offset, cmp_width);
    case 24:
      return PdqSortRowsFixed<24>(rows, count, cmp_offset, cmp_width);
    case 32:
      return PdqSortRowsFixed<32>(rows, count, cmp_offset, cmp_width);
    case 40:
      return PdqSortRowsFixed<40>(rows, count, cmp_offset, cmp_width);
    case 48:
      return PdqSortRowsFixed<48>(rows, count, cmp_offset, cmp_width);
    case 56:
      return PdqSortRowsFixed<56>(rows, count, cmp_offset, cmp_width);
    case 64:
      return PdqSortRowsFixed<64>(rows, count, cmp_offset, cmp_width);
    case 80:
      return PdqSortRowsFixed<80>(rows, count, cmp_offset, cmp_width);
    case 96:
      return PdqSortRowsFixed<96>(rows, count, cmp_offset, cmp_width);
    case 128:
      return PdqSortRowsFixed<128>(rows, count, cmp_offset, cmp_width);
    default:
      return PdqSortRowsIndirect(rows, count, row_width, cmp_offset,
                                 cmp_width);
  }
}

}  // namespace rowsort
