// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "sortalgo/radix_sort.h"

#include <cstring>
#include <vector>

#include "common/macros.h"
#include "row/row_kernels.h"
#include "sortalgo/row_ops.h"
#include "sortalgo/row_sort.h"

namespace rowsort {

namespace {

constexpr uint64_t kBuckets = 256;

struct ByteHistogram {
  uint64_t counts[kBuckets] = {};
  uint64_t max_count = 0;  ///< largest bucket, maintained by the counters

  /// True when one bucket holds every row (enables the paper's copy-skip
  /// optimization); decided from the running maximum instead of an O(256)
  /// scan after each counting pass.
  bool AllInOneBucket(uint64_t count) const { return max_count == count; }
};

void CountByte(const uint8_t* rows, uint64_t count, uint64_t row_width,
               uint64_t byte_offset, ByteHistogram* hist, bool prefetch) {
  const uint8_t* ptr = rows + byte_offset;
  // The strided single-byte loads defeat the hardware next-line prefetcher
  // for wide rows; reading ahead of the cursor hides that.
  const uint64_t ahead = prefetch ? kScatterPrefetchDistance * row_width : 0;
  uint64_t max = hist->max_count;
  for (uint64_t i = 0; i < count; ++i) {
    if (ahead != 0 && i + kScatterPrefetchDistance < count) {
      ROWSORT_PREFETCH_READ(ptr + ahead);
    }
    uint64_t c = ++hist->counts[*ptr];
    if (c > max) max = c;
    ptr += row_width;
  }
  hist->max_count = max;
}

/// Histograms of all \p key_width digits in a single scan over the rows.
/// Byte-value distributions are invariant under reordering, so the LSD sort
/// can count every digit up front instead of re-scanning all rows per pass.
void CountAllBytes(const uint8_t* rows, uint64_t count, uint64_t row_width,
                   uint64_t key_offset, uint64_t key_width,
                   ByteHistogram* hists, bool prefetch) {
  const uint8_t* key = rows + key_offset;
  const uint64_t ahead = prefetch ? kScatterPrefetchDistance * row_width : 0;
  for (uint64_t i = 0; i < count; ++i) {
    if (ahead != 0 && i + kScatterPrefetchDistance < count) {
      ROWSORT_PREFETCH_READ(key + ahead);
    }
    for (uint64_t d = 0; d < key_width; ++d) {
      ByteHistogram& hist = hists[d];
      uint64_t c = ++hist.counts[key[d]];
      if (c > hist.max_count) hist.max_count = c;
    }
    key += row_width;
  }
}

}  // namespace

void RadixSortLsd(uint8_t* rows, uint8_t* aux, uint64_t count,
                  const RadixSortConfig& config, RadixSortStats* stats) {
  ROWSORT_DASSERT(config.key_offset + config.key_width <= config.row_width);
  if (count < 2 || config.key_width == 0) return;

  const uint64_t row_width = config.row_width;
  uint8_t* src = rows;
  uint8_t* dst = aux;

  // All per-digit histograms in one fused scan (they do not depend on row
  // order, so the scatter passes below cannot invalidate them).
  if (config.cancellation_check) config.cancellation_check();
  std::vector<ByteHistogram> hists(config.key_width);
  {
    TraceSpan span(config.trace, "radix.lsd_count", "run_sort");
    CountAllBytes(src, count, row_width, config.key_offset, config.key_width,
                  hists.data(), config.prefetch);
  }

  // One stable scatter pass per key byte, least significant digit first.
  for (uint64_t d = config.key_width; d-- > 0;) {
    if (config.cancellation_check) config.cancellation_check();
    const uint64_t byte_offset = config.key_offset + d;
    const ByteHistogram& hist = hists[d];

    // Copy-skip optimization (paper §VI-B): a constant byte cannot change
    // the order, so the pass performs no data movement.
    if (hist.AllInOneBucket(count)) {
      if (stats) ++stats->skipped_passes;
      continue;
    }

    TraceSpan span(config.trace, "radix.lsd_pass", "run_sort");
    uint64_t offsets[kBuckets];
    uint64_t sum = 0;
    for (uint64_t b = 0; b < kBuckets; ++b) {
      offsets[b] = sum;
      sum += hist.counts[b];
    }

    const uint8_t* in = src;
    const uint64_t ahead =
        config.prefetch ? kScatterPrefetchDistance * row_width : 0;
    for (uint64_t i = 0; i < count; ++i) {
      if (ahead != 0 && i + kScatterPrefetchDistance < count) {
        // Read ahead of the scan cursor and prime the store target of the
        // lookahead row — its bucket offset is exact up to the rows scattered
        // there in between, which land in the same lines anyway.
        const uint8_t* next = in + ahead;
        ROWSORT_PREFETCH_READ(next);
        ROWSORT_PREFETCH_WRITE(dst + offsets[next[byte_offset]] * row_width);
      }
      uint64_t bucket = in[byte_offset];
      RowCopy(dst + offsets[bucket] * row_width, in, row_width);
      ++offsets[bucket];
      in += row_width;
    }
    if (stats) {
      ++stats->passes;
      stats->rows_moved += count;
    }
    std::swap(src, dst);
  }

  if (src != rows) {
    std::memcpy(rows, src, count * row_width);
    if (stats) stats->rows_moved += count;
  }
}

namespace {

/// Shared recursive MSD implementation. \p small_sort finishes buckets of at
/// most \p small_threshold rows by comparing the *remaining* key suffix.
template <typename SmallSort>
void MsdRecurse(uint8_t* rows, uint8_t* aux, uint64_t count,
                const RadixSortConfig& config, uint64_t digit,
                uint64_t small_threshold, const SmallSort& small_sort,
                RadixSortStats* stats) {
  while (digit < config.key_width) {
    if (count <= 1) return;
    if (count <= small_threshold) {
      small_sort(rows, count, digit);
      if (stats) ++stats->insertion_sorts;
      return;
    }

    const uint64_t row_width = config.row_width;
    const uint64_t byte_offset = config.key_offset + digit;
    // One check per counting pass: each pass is O(count) work, so a cancel
    // is observed within one pass over this bucket.
    if (config.cancellation_check) config.cancellation_check();
    ByteHistogram hist;
    CountByte(rows, count, row_width, byte_offset, &hist, config.prefetch);

    // Copy-skip: all rows share this byte, descend without moving data.
    if (hist.AllInOneBucket(count)) {
      if (stats) ++stats->skipped_passes;
      ++digit;
      continue;
    }

    uint64_t offsets[kBuckets + 1];
    uint64_t sum = 0;
    for (uint64_t b = 0; b < kBuckets; ++b) {
      offsets[b] = sum;
      sum += hist.counts[b];
    }
    offsets[kBuckets] = sum;

    // Scatter into aux in bucket order, then copy back: rows now grouped by
    // this digit, each bucket contiguous.
    {
      uint64_t cursor[kBuckets];
      std::memcpy(cursor, offsets, sizeof(cursor));
      const uint8_t* in = rows;
      const uint64_t ahead =
          config.prefetch ? kScatterPrefetchDistance * row_width : 0;
      for (uint64_t i = 0; i < count; ++i) {
        if (ahead != 0 && i + kScatterPrefetchDistance < count) {
          const uint8_t* next = in + ahead;
          ROWSORT_PREFETCH_READ(next);
          ROWSORT_PREFETCH_WRITE(aux + cursor[next[byte_offset]] * row_width);
        }
        uint64_t bucket = in[byte_offset];
        RowCopy(aux + cursor[bucket] * row_width, in, row_width);
        ++cursor[bucket];
        in += row_width;
      }
      std::memcpy(rows, aux, count * row_width);
    }
    if (stats) {
      ++stats->passes;
      stats->rows_moved += 2 * count;
    }

    // Recurse per bucket on the next digit.
    for (uint64_t b = 0; b < kBuckets; ++b) {
      uint64_t bucket_count = offsets[b + 1] - offsets[b];
      if (bucket_count > 1) {
        MsdRecurse(rows + offsets[b] * row_width, aux + offsets[b] * row_width,
                   bucket_count, config, digit + 1, small_threshold,
                   small_sort, stats);
      }
    }
    return;
  }
}

}  // namespace

void RadixSortMsd(uint8_t* rows, uint8_t* aux, uint64_t count,
                  const RadixSortConfig& config, RadixSortStats* stats) {
  ROWSORT_DASSERT(config.key_offset + config.key_width <= config.row_width);
  if (count < 2 || config.key_width == 0) return;
  auto insertion = [&](uint8_t* bucket_rows, uint64_t bucket_count,
                       uint64_t digit) {
    // Bytes before `digit` are equal within the bucket; compare the suffix.
    RowInsertionSort(bucket_rows, bucket_count, config.row_width,
                     config.key_offset + digit, config.key_width - digit);
  };
  // One span for the whole recursion: MSD buckets are too fine-grained to
  // trace individually without drowning the ring buffer.
  TraceSpan span(config.trace, "radix.msd", "run_sort");
  MsdRecurse(rows, aux, count, config, 0, config.insertion_threshold,
             insertion, stats);
}

void RadixSortMsdWithPdq(uint8_t* rows, uint8_t* aux, uint64_t count,
                         const RadixSortConfig& config, uint64_t pdq_threshold,
                         RadixSortStats* stats) {
  ROWSORT_DASSERT(config.key_offset + config.key_width <= config.row_width);
  if (count < 2 || config.key_width == 0) return;
  auto pdq = [&](uint8_t* bucket_rows, uint64_t bucket_count, uint64_t digit) {
    PdqSortRows(bucket_rows, bucket_count, config.row_width,
                config.key_offset + digit, config.key_width - digit);
  };
  TraceSpan span(config.trace, "radix.msd", "run_sort");
  MsdRecurse(rows, aux, count, config, 0, pdq_threshold, pdq, stats);
}

void RadixSort(uint8_t* rows, uint8_t* aux, uint64_t count,
               const RadixSortConfig& config, RadixSortStats* stats) {
  if (config.key_width <= config.lsd_key_width_bound) {
    RadixSortLsd(rows, aux, count, config, stats);
  } else {
    RadixSortMsd(rows, aux, count, config, stats);
  }
}

}  // namespace rowsort
