// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "row/row_kernels.h"

namespace rowsort {

namespace {

/// Process-wide kernel switch. Relaxed: readers only need to see *a* value,
/// and tests that flip it synchronize externally (they flip around whole
/// operations, not mid-loop).
std::atomic<bool> g_row_kernels_enabled{true};

}  // namespace

bool RowKernelsEnabled() {
  return g_row_kernels_enabled.load(std::memory_order_relaxed);
}

bool SetRowKernelsEnabled(bool enabled) {
  return g_row_kernels_enabled.exchange(enabled, std::memory_order_relaxed);
}

void ScatterColumnDense(const uint8_t* src, int value_size, uint8_t* dst,
                        uint64_t dst_stride, uint64_t count) {
  using namespace row_kernels;
  switch (value_size) {
    case 1:
      ScatterLoop<1>(src, dst, dst_stride, count);
      return;
    case 2:
      ScatterLoop<2>(src, dst, dst_stride, count);
      return;
    case 4:
      ScatterLoop<4>(src, dst, dst_stride, count);
      return;
    case 8:
      ScatterLoop<8>(src, dst, dst_stride, count);
      return;
    case 16:
      ScatterLoop<16>(src, dst, dst_stride, count);
      return;
    default:
      // Runtime-width fallback for widths no type currently has.
      for (uint64_t i = 0; i < count; ++i) {
        std::memcpy(dst, src, value_size);
        src += value_size;
        dst += dst_stride;
      }
      return;
  }
}

void GatherColumnDense(const uint8_t* src, uint64_t src_stride, int value_size,
                       uint8_t* dst, uint64_t count) {
  using namespace row_kernels;
  switch (value_size) {
    case 1:
      GatherSeqLoop<1>(src, src_stride, dst, count);
      return;
    case 2:
      GatherSeqLoop<2>(src, src_stride, dst, count);
      return;
    case 4:
      GatherSeqLoop<4>(src, src_stride, dst, count);
      return;
    case 8:
      GatherSeqLoop<8>(src, src_stride, dst, count);
      return;
    case 16:
      GatherSeqLoop<16>(src, src_stride, dst, count);
      return;
    default:
      for (uint64_t i = 0; i < count; ++i) {
        std::memcpy(dst, src, value_size);
        src += src_stride;
        dst += value_size;
      }
      return;
  }
}

void GatherColumnIndexed(const uint8_t* base, uint64_t row_stride,
                         uint64_t col_offset, const uint64_t* indices,
                         uint64_t count, int value_size, uint8_t* dst) {
  using namespace row_kernels;
  switch (value_size) {
    case 1:
      GatherIndexedLoop<1>(base, row_stride, col_offset, indices, count, dst);
      return;
    case 2:
      GatherIndexedLoop<2>(base, row_stride, col_offset, indices, count, dst);
      return;
    case 4:
      GatherIndexedLoop<4>(base, row_stride, col_offset, indices, count, dst);
      return;
    case 8:
      GatherIndexedLoop<8>(base, row_stride, col_offset, indices, count, dst);
      return;
    case 16:
      GatherIndexedLoop<16>(base, row_stride, col_offset, indices, count, dst);
      return;
    default:
      for (uint64_t i = 0; i < count; ++i) {
        if (i + kGatherPrefetchDistance < count) {
          ROWSORT_PREFETCH_READ(
              base + indices[i + kGatherPrefetchDistance] * row_stride +
              col_offset);
        }
        std::memcpy(dst + i * value_size,
                    base + indices[i] * row_stride + col_offset, value_size);
      }
      return;
  }
}

}  // namespace rowsort
