// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>
#include <vector>

#include "common/memory_tracker.h"
#include "row/row_layout.h"
#include "vector/data_chunk.h"
#include "vector/string_heap.h"

namespace rowsort {

/// \brief Materialized table in NSM row format: a contiguous array of
/// fixed-size rows plus a StringHeap owning non-inlined VARCHAR payloads.
///
/// This is the materialization target of the sort operator (a pipeline
/// breaker, paper §V) and the unit the engine sorts, merges, spills, and
/// re-converts to vectors (Fig. 11).
class RowCollection {
 public:
  RowCollection() = default;
  explicit RowCollection(RowLayout layout) : layout_(std::move(layout)) {}
  ROWSORT_DISALLOW_COPY(RowCollection);
  RowCollection(RowCollection&&) = default;
  RowCollection& operator=(RowCollection&&) = default;

  const RowLayout& layout() const { return layout_; }
  uint64_t row_count() const { return row_count_; }

  uint8_t* data() { return rows_.data(); }
  const uint8_t* data() const { return rows_.data(); }

  uint8_t* GetRow(uint64_t row) {
    return rows_.data() + row * layout_.row_width();
  }
  const uint8_t* GetRow(uint64_t row) const {
    return rows_.data() + row * layout_.row_width();
  }

  StringHeap& string_heap() { return heap_; }

  /// Scatters rows [0, chunk.size()) of \p chunk to the end of the
  /// collection, converting DSM -> NSM column by column ("one vector at a
  /// time", §VII). String payloads are copied into this collection's heap so
  /// it owns all its data.
  void AppendChunk(const DataChunk& chunk);

  /// Pre-allocates space for \p count uninitialized rows and returns the
  /// index of the first (engine-internal: reorder targets).
  uint64_t AppendUninitialized(uint64_t count);

  /// Scatters a single row of \p chunk (selective operators like Top-N
  /// append only surviving rows). Returns the new row's index.
  uint64_t AppendRow(const DataChunk& chunk, uint64_t row);

  /// Gathers rows [start, start+count) into \p out (NSM -> DSM). \p out must
  /// be initialized with the layout's types and capacity >= count. String
  /// values are copied into the output vectors' heaps.
  void GatherChunk(uint64_t start, uint64_t count, DataChunk* out) const;

  /// Gathers arbitrary rows identified by \p row_indices (NSM -> DSM).
  void GatherRows(const uint64_t* row_indices, uint64_t count,
                   DataChunk* out) const;

  /// Reads a single value (slow; tests and tie resolution).
  Value GetValue(uint64_t row, uint64_t col) const;

  /// Takes ownership of \p other's string heap (used after copying rows from
  /// \p other into this collection, e.g. while merging sorted runs).
  void AdoptHeap(RowCollection&& other) {
    heap_.Merge(std::move(other.heap_));
    other.UpdateMemoryAccounting();
    UpdateMemoryAccounting();
  }

  /// Total bytes of fixed-size row storage.
  uint64_t RowBytes() const { return rows_.size(); }

  /// Resident bytes: row storage capacity plus owned string-heap blocks.
  uint64_t MemoryBytes() const {
    return rows_.capacity() + heap_.AllocatedBytes();
  }

  /// Starts (or stops, with nullptr) accounting this collection's resident
  /// bytes against \p tracker. The reservation follows moves and is released
  /// on destruction.
  void SetMemoryTracker(MemoryTracker* tracker) {
    tracker_ = tracker;
    reservation_.Reset(tracker, MemoryBytes());
  }

 private:
  friend class RowCollectionTestPeer;

  /// Re-syncs the reservation with the current resident size; called after
  /// every mutating operation.
  void UpdateMemoryAccounting() {
    if (tracker_ != nullptr) reservation_.Reset(tracker_, MemoryBytes());
  }

  RowLayout layout_;
  std::vector<uint8_t> rows_;
  StringHeap heap_;
  uint64_t row_count_ = 0;
  MemoryTracker* tracker_ = nullptr;
  MemoryReservation reservation_;
};

}  // namespace rowsort
