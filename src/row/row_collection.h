// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>
#include <vector>

#include "common/memory_tracker.h"
#include "row/row_kernels.h"
#include "row/row_layout.h"
#include "vector/data_chunk.h"
#include "vector/string_heap.h"

namespace rowsort {

/// \brief Materialized table in NSM row format: a contiguous array of
/// fixed-size rows plus a StringHeap owning non-inlined VARCHAR payloads.
///
/// This is the materialization target of the sort operator (a pipeline
/// breaker, paper §V) and the unit the engine sorts, merges, spills, and
/// re-converts to vectors (Fig. 11).
class RowCollection {
 public:
  RowCollection() = default;
  explicit RowCollection(RowLayout layout) : layout_(std::move(layout)) {}
  ROWSORT_DISALLOW_COPY(RowCollection);
  RowCollection(RowCollection&&) = default;
  RowCollection& operator=(RowCollection&&) = default;

  const RowLayout& layout() const { return layout_; }
  uint64_t row_count() const { return row_count_; }

  uint8_t* data() { return rows_.data(); }
  const uint8_t* data() const { return rows_.data(); }

  uint8_t* GetRow(uint64_t row) {
    return rows_.data() + row * layout_.row_width();
  }
  const uint8_t* GetRow(uint64_t row) const {
    return rows_.data() + row * layout_.row_width();
  }

  StringHeap& string_heap() { return heap_; }

  /// Scatters rows [0, chunk.size()) of \p chunk to the end of the
  /// collection, converting DSM -> NSM column by column ("one vector at a
  /// time", §VII). String payloads are copied into this collection's heap so
  /// it owns all its data. Fixed-width columns go through the
  /// width-specialized scatter kernels with a word-at-a-time all-valid fast
  /// path (row_kernels.h); \p stats, when given, counts the fast-path rows.
  void AppendChunk(const DataChunk& chunk, RowKernelStats* stats = nullptr);

  /// Pre-allocates space for \p count uninitialized rows and returns the
  /// index of the first (engine-internal: reorder targets). The caller
  /// writes raw row bytes, so NULL tracking turns conservative: every
  /// column is treated as possibly NULL until SetMaybeNullMask() narrows it.
  uint64_t AppendUninitialized(uint64_t count);

  /// Scatters a single row of \p chunk (selective operators like Top-N
  /// append only surviving rows). Returns the new row's index.
  uint64_t AppendRow(const DataChunk& chunk, uint64_t row);

  /// Gathers rows [start, start+count) into \p out (NSM -> DSM). \p out must
  /// be initialized with the layout's types and capacity >= count. String
  /// values are copied into the output vectors' heaps. Columns never marked
  /// possibly-NULL skip the per-row validity branch entirely (counted in
  /// \p stats->gather_fast_path when given).
  void GatherChunk(uint64_t start, uint64_t count, DataChunk* out,
                   RowKernelStats* stats = nullptr) const;

  /// Gathers arbitrary rows identified by \p row_indices (NSM -> DSM),
  /// prefetching kGatherPrefetchDistance rows ahead of the copy cursor.
  void GatherRows(const uint64_t* row_indices, uint64_t count, DataChunk* out,
                  RowKernelStats* stats = nullptr) const;

  /// Bit i set = column i may contain NULL rows (always assumed for columns
  /// >= 64). Maintained by the Append paths; raw writes through
  /// AppendUninitialized() set every bit. The gather fast path relies on
  /// this being conservative: a clear bit guarantees no NULL.
  uint64_t maybe_null_mask() const { return maybe_null_mask_; }

  /// Overrides the possibly-NULL mask. Only valid when the caller knows the
  /// rows' true NULL content — e.g. the sort engine after copying rows
  /// verbatim from source collections, where the union of the sources'
  /// masks is exact (see sort_engine.cc's merge paths).
  void SetMaybeNullMask(uint64_t mask) { maybe_null_mask_ = mask; }

  /// Reads a single value (slow; tests and tie resolution).
  Value GetValue(uint64_t row, uint64_t col) const;

  /// Takes ownership of \p other's string heap (used after copying rows from
  /// \p other into this collection, e.g. while merging sorted runs).
  void AdoptHeap(RowCollection&& other) {
    heap_.Merge(std::move(other.heap_));
    other.UpdateMemoryAccounting();
    UpdateMemoryAccounting();
  }

  /// Total bytes of fixed-size row storage.
  uint64_t RowBytes() const { return rows_.size(); }

  /// Resident bytes: row storage capacity plus owned string-heap blocks.
  uint64_t MemoryBytes() const {
    return rows_.capacity() + heap_.AllocatedBytes();
  }

  /// Starts (or stops, with nullptr) accounting this collection's resident
  /// bytes against \p tracker. The reservation follows moves and is released
  /// on destruction.
  void SetMemoryTracker(MemoryTracker* tracker) {
    tracker_ = tracker;
    reservation_.Reset(tracker, MemoryBytes());
  }

 private:
  friend class RowCollectionTestPeer;

  /// Re-syncs the reservation with the current resident size; called after
  /// every mutating operation.
  void UpdateMemoryAccounting() {
    if (tracker_ != nullptr) reservation_.Reset(tracker_, MemoryBytes());
  }

  /// Grows the row storage without touching NULL tracking (internal: the
  /// Append paths grow first, then record per-column validity precisely).
  uint64_t GrowRows(uint64_t count);

  /// True when column \p col may hold NULLs (conservative).
  bool ColumnMaybeNull(uint64_t col) const {
    return col >= 64 || ((maybe_null_mask_ >> col) & 1) != 0;
  }
  void MarkMaybeNull(uint64_t col) {
    maybe_null_mask_ |= col < 64 ? (uint64_t(1) << col) : 0;
  }

  RowLayout layout_;
  std::vector<uint8_t> rows_;
  StringHeap heap_;
  uint64_t row_count_ = 0;
  uint64_t maybe_null_mask_ = 0;  ///< bit per column; see maybe_null_mask()
  MemoryTracker* tracker_ = nullptr;
  MemoryReservation reservation_;
};

}  // namespace rowsort
