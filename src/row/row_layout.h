// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>
#include <vector>

#include "types/logical_type.h"

namespace rowsort {

/// \brief Fixed-size NSM row layout over a set of column types.
///
/// Every row is the same number of bytes (paper §VII: "The rows have a fixed
/// size: Variable-sized types like strings are stored separately"):
///
///   [ validity bytes: 1 bit per column ][ col 0 ][ col 1 ] ... [ padding ]
///
/// VARCHAR slots hold a 16-byte string_t whose non-inlined payload lives in
/// the owning RowCollection's StringHeap. The total width is rounded up to a
/// multiple of 8 because "8-byte alignment ... improves the performance of
/// memcpy" (§VII).
class RowLayout {
 public:
  RowLayout() = default;
  explicit RowLayout(std::vector<LogicalType> types);

  const std::vector<LogicalType>& types() const { return types_; }
  uint64_t ColumnCount() const { return types_.size(); }

  /// Total bytes per row including validity prefix and padding.
  uint64_t row_width() const { return row_width_; }

  /// Byte offset of column \p col's value slot within a row.
  uint64_t ColumnOffset(uint64_t col) const { return offsets_[col]; }

  /// Bytes of the validity prefix.
  uint64_t ValidityBytes() const { return validity_bytes_; }

  /// True when any column is VARCHAR (rows reference a string heap).
  bool HasVariableSize() const { return has_varchar_; }

  /// Reads/writes the validity bit of column \p col in row \p row_ptr.
  static bool IsValid(const uint8_t* row_ptr, uint64_t col) {
    return (row_ptr[col / 8] >> (col % 8)) & 1;
  }
  static void SetValid(uint8_t* row_ptr, uint64_t col, bool valid) {
    if (valid) {
      row_ptr[col / 8] |= static_cast<uint8_t>(1u << (col % 8));
    } else {
      row_ptr[col / 8] &= static_cast<uint8_t>(~(1u << (col % 8)));
    }
  }

 private:
  std::vector<LogicalType> types_;
  std::vector<uint64_t> offsets_;
  uint64_t validity_bytes_ = 0;
  uint64_t row_width_ = 0;
  bool has_varchar_ = false;
};

}  // namespace rowsort
