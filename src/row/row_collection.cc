// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "row/row_collection.h"

#include <algorithm>
#include <cstring>

#include "common/bit_util.h"
#include "row/row_kernels.h"
#include "types/string_t.h"

namespace rowsort {

uint64_t RowCollection::GrowRows(uint64_t count) {
  uint64_t first = row_count_;
  rows_.resize(rows_.size() + count * layout_.row_width());
  row_count_ += count;
  UpdateMemoryAccounting();
  return first;
}

uint64_t RowCollection::AppendUninitialized(uint64_t count) {
  // Raw bytes follow; assume any column may now hold NULLs until the caller
  // narrows the mask (SetMaybeNullMask) with real knowledge of the rows.
  maybe_null_mask_ = ~uint64_t(0);
  return GrowRows(count);
}

uint64_t RowCollection::AppendRow(const DataChunk& chunk, uint64_t row) {
  ROWSORT_ASSERT(chunk.ColumnCount() == layout_.ColumnCount());
  ROWSORT_ASSERT(row < chunk.size());
  uint64_t slot = GrowRows(1);
  uint8_t* dest = GetRow(slot);
  std::memset(dest, 0xFF, layout_.ValidityBytes());
  for (uint64_t col = 0; col < layout_.ColumnCount(); ++col) {
    const Vector& vec = chunk.column(col);
    const uint64_t offset = layout_.ColumnOffset(col);
    const int value_size = vec.type().FixedSize();
    if (!vec.validity().RowIsValid(row)) {
      RowLayout::SetValid(dest, col, false);
      std::memset(dest + offset, 0, value_size);
      MarkMaybeNull(col);
      continue;
    }
    if (vec.type().id() == TypeId::kVarchar) {
      string_t owned = heap_.AddString(vec.TypedData<string_t>()[row]);
      std::memcpy(dest + offset, &owned, sizeof(string_t));
    } else {
      std::memcpy(dest + offset, vec.data() + row * value_size, value_size);
    }
  }
  UpdateMemoryAccounting();
  return slot;
}

void RowCollection::AppendChunk(const DataChunk& chunk, RowKernelStats* stats) {
  ROWSORT_ASSERT(chunk.ColumnCount() == layout_.ColumnCount());
  const uint64_t count = chunk.size();
  const uint64_t width = layout_.row_width();
  const bool kernels = RowKernelsEnabled();
  uint64_t first = GrowRows(count);
  uint8_t* base = GetRow(first);

  // Zero validity prefixes (and padding) once, then scatter column by column.
  const uint64_t validity_bytes = layout_.ValidityBytes();
  if (kernels && validity_bytes == 1) {
    // The common <= 8 column case: one byte store per row beats a memset
    // call per row.
    uint8_t* prefix = base;
    for (uint64_t row = 0; row < count; ++row) {
      *prefix = 0xFF;
      prefix += width;
    }
  } else {
    for (uint64_t row = 0; row < count; ++row) {
      std::memset(base + row * width, 0xFF, validity_bytes);
    }
  }

  for (uint64_t col = 0; col < layout_.ColumnCount(); ++col) {
    const Vector& vec = chunk.column(col);
    const uint64_t offset = layout_.ColumnOffset(col);
    const int value_size = vec.type().FixedSize();
    const auto& validity = vec.validity();
    // Conservative NULL tracking: a materialized source mask marks the
    // column possibly-NULL even if every bit happens to be set.
    if (!validity.AllValid()) MarkMaybeNull(col);

    if (vec.type().id() == TypeId::kVarchar) {
      const string_t* strings = vec.TypedData<string_t>();
      if (kernels && validity.AllValid()) {
        // All-valid fast path: no per-row validity branch (string payloads
        // still copy one at a time — they own heap space).
        for (uint64_t row = 0; row < count; ++row) {
          string_t owned = heap_.AddString(strings[row]);
          std::memcpy(base + row * width + offset, &owned, sizeof(string_t));
        }
        if (stats != nullptr) {
          stats->scatter_fast_path.fetch_add(count, std::memory_order_relaxed);
        }
      } else {
        for (uint64_t row = 0; row < count; ++row) {
          uint8_t* dest = base + row * width;
          if (!validity.RowIsValid(row)) {
            RowLayout::SetValid(dest, col, false);
            std::memset(dest + offset, 0, sizeof(string_t));
            continue;
          }
          // Copy the payload into our heap so the collection is self-owned.
          string_t owned = heap_.AddString(strings[row]);
          std::memcpy(dest + offset, &owned, sizeof(string_t));
        }
      }
      UpdateMemoryAccounting();
    } else if (!kernels) {
      // Scalar reference path (ablation baseline): runtime-width memcpy per
      // value, validity branch per row.
      const uint8_t* src = vec.data();
      for (uint64_t row = 0; row < count; ++row) {
        uint8_t* dest = base + row * width;
        if (!validity.RowIsValid(row)) {
          RowLayout::SetValid(dest, col, false);
          std::memset(dest + offset, 0, value_size);
          continue;
        }
        std::memcpy(dest + offset, src + row * value_size, value_size);
      }
    } else if (validity.AllValid()) {
      // All-valid fast path: width-specialized branchless scatter.
      ScatterColumnDense(vec.data(), value_size, base + offset, width, count);
      if (stats != nullptr) {
        stats->scatter_fast_path.fetch_add(count, std::memory_order_relaxed);
      }
    } else {
      // Mixed validity: test the mask one 64-row word at a time; fully-valid
      // words run the branchless kernel, others fall back to per-row bits.
      const uint8_t* src = vec.data();
      for (uint64_t span_begin = 0; span_begin < count; span_begin += 64) {
        const uint64_t span = std::min<uint64_t>(64, count - span_begin);
        const uint64_t bits = validity.ValidWord(span_begin / 64);
        uint8_t* dest = base + span_begin * width;
        const uint8_t* vals = src + span_begin * value_size;
        if (bits == ~uint64_t(0)) {
          ScatterColumnDense(vals, value_size, dest + offset, width, span);
          if (stats != nullptr) {
            stats->scatter_fast_path.fetch_add(span, std::memory_order_relaxed);
          }
          continue;
        }
        for (uint64_t i = 0; i < span; ++i, dest += width) {
          if (((bits >> i) & 1) == 0) {
            RowLayout::SetValid(dest, col, false);
            std::memset(dest + offset, 0, value_size);
          } else {
            std::memcpy(dest + offset, vals + i * value_size, value_size);
          }
        }
      }
    }
  }
}

namespace {

/// Gathers one column, sequentially (\p indices == nullptr: rows
/// [seq_start, seq_start + count)) or index-driven. \p maybe_null false
/// guarantees every gathered row is valid, enabling the branchless fast
/// path; \p kernels false forces the scalar reference loop.
void GatherColumn(uint64_t col, uint64_t col_offset, const uint8_t* base,
                  uint64_t width, const uint64_t* indices, uint64_t seq_start,
                  uint64_t count, bool maybe_null, bool kernels, Vector* out,
                  RowKernelStats* stats) {
  const int value_size = out->type().FixedSize();
  const bool fast = kernels && !maybe_null;
  if (fast && stats != nullptr) {
    stats->gather_fast_path.fetch_add(count, std::memory_order_relaxed);
  }
  if (out->type().id() == TypeId::kVarchar) {
    if (fast) out->validity().Reset();  // every gathered row is valid
    for (uint64_t i = 0; i < count; ++i) {
      const uint8_t* src =
          base + (indices != nullptr ? indices[i] : seq_start + i) * width;
      if (indices != nullptr && i + kGatherPrefetchDistance < count) {
        ROWSORT_PREFETCH_READ(base + indices[i + kGatherPrefetchDistance] * width);
      }
      if (!fast) {
        if (!RowLayout::IsValid(src, col)) {
          out->validity().SetInvalid(i);
          continue;
        }
        out->validity().SetValid(i);
      }
      string_t value = bit_util::LoadUnaligned<string_t>(src + col_offset);
      // Copy into the output vector's heap so the chunk outlives the rows.
      out->SetString(i, value.View());
    }
    return;
  }
  uint8_t* dest = out->data();
  if (fast) {
    out->validity().Reset();
    if (indices == nullptr) {
      GatherColumnDense(base + seq_start * width + col_offset, width,
                        value_size, dest, count);
    } else {
      GatherColumnIndexed(base, width, col_offset, indices, count, value_size,
                          dest);
    }
    return;
  }
  for (uint64_t i = 0; i < count; ++i) {
    const uint8_t* src =
        base + (indices != nullptr ? indices[i] : seq_start + i) * width;
    if (kernels && indices != nullptr && i + kGatherPrefetchDistance < count) {
      ROWSORT_PREFETCH_READ(base + indices[i + kGatherPrefetchDistance] * width);
    }
    if (!RowLayout::IsValid(src, col)) {
      out->validity().SetInvalid(i);
      continue;
    }
    out->validity().SetValid(i);
    std::memcpy(dest + i * value_size, src + col_offset, value_size);
  }
}

}  // namespace

void RowCollection::GatherChunk(uint64_t start, uint64_t count, DataChunk* out,
                                RowKernelStats* stats) const {
  ROWSORT_ASSERT(start + count <= row_count_);
  ROWSORT_ASSERT(out->ColumnCount() == layout_.ColumnCount());
  ROWSORT_ASSERT(count <= out->capacity());
  const bool kernels = RowKernelsEnabled();
  if (!kernels) {
    // Scalar reference path, exactly as shipped before the kernel layer:
    // materialize an index array and run the indexed gather.
    std::vector<uint64_t> indices(count);
    for (uint64_t i = 0; i < count; ++i) indices[i] = start + i;
    GatherRows(indices.data(), count, out, stats);
    return;
  }
  const uint64_t width = layout_.row_width();
  for (uint64_t col = 0; col < layout_.ColumnCount(); ++col) {
    GatherColumn(col, layout_.ColumnOffset(col), rows_.data(), width,
                 /*indices=*/nullptr, start, count, ColumnMaybeNull(col),
                 kernels, &out->column(col), stats);
  }
  out->SetSize(count);
}

void RowCollection::GatherRows(const uint64_t* row_indices, uint64_t count,
                               DataChunk* out, RowKernelStats* stats) const {
  ROWSORT_ASSERT(out->ColumnCount() == layout_.ColumnCount());
  const bool kernels = RowKernelsEnabled();
  const uint64_t width = layout_.row_width();
  for (uint64_t col = 0; col < layout_.ColumnCount(); ++col) {
    GatherColumn(col, layout_.ColumnOffset(col), rows_.data(), width,
                 row_indices, /*seq_start=*/0, count, ColumnMaybeNull(col),
                 kernels, &out->column(col), stats);
  }
  out->SetSize(count);
}

Value RowCollection::GetValue(uint64_t row, uint64_t col) const {
  ROWSORT_ASSERT(row < row_count_ && col < layout_.ColumnCount());
  const uint8_t* row_ptr = GetRow(row);
  const LogicalType& type = layout_.types()[col];
  if (!RowLayout::IsValid(row_ptr, col)) return Value::Null(type);
  const uint8_t* src = row_ptr + layout_.ColumnOffset(col);
  switch (type.id()) {
    case TypeId::kBool:
      return Value::Bool(*src != 0);
    case TypeId::kInt8:
      return Value::Int8(static_cast<int8_t>(*src));
    case TypeId::kInt16:
      return Value::Int16(bit_util::LoadUnaligned<int16_t>(src));
    case TypeId::kInt32:
      return Value::Int32(bit_util::LoadUnaligned<int32_t>(src));
    case TypeId::kDate:
      return Value::Date(bit_util::LoadUnaligned<int32_t>(src));
    case TypeId::kInt64:
      return Value::Int64(bit_util::LoadUnaligned<int64_t>(src));
    case TypeId::kUint32:
      return Value::Uint32(bit_util::LoadUnaligned<uint32_t>(src));
    case TypeId::kUint64:
      return Value::Uint64(bit_util::LoadUnaligned<uint64_t>(src));
    case TypeId::kFloat:
      return Value::Float(bit_util::LoadUnaligned<float>(src));
    case TypeId::kDouble:
      return Value::Double(bit_util::LoadUnaligned<double>(src));
    case TypeId::kVarchar: {
      string_t value = bit_util::LoadUnaligned<string_t>(src);
      return Value::Varchar(value.ToString());
    }
    case TypeId::kInvalid:
      break;
  }
  ROWSORT_ASSERT(false && "GetValue on invalid type");
  return Value();
}

}  // namespace rowsort
