// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "row/row_collection.h"

#include <cstring>

#include "common/bit_util.h"
#include "types/string_t.h"

namespace rowsort {

uint64_t RowCollection::AppendUninitialized(uint64_t count) {
  uint64_t first = row_count_;
  rows_.resize(rows_.size() + count * layout_.row_width());
  row_count_ += count;
  UpdateMemoryAccounting();
  return first;
}

uint64_t RowCollection::AppendRow(const DataChunk& chunk, uint64_t row) {
  ROWSORT_ASSERT(chunk.ColumnCount() == layout_.ColumnCount());
  ROWSORT_ASSERT(row < chunk.size());
  uint64_t slot = AppendUninitialized(1);
  uint8_t* dest = GetRow(slot);
  std::memset(dest, 0xFF, layout_.ValidityBytes());
  for (uint64_t col = 0; col < layout_.ColumnCount(); ++col) {
    const Vector& vec = chunk.column(col);
    const uint64_t offset = layout_.ColumnOffset(col);
    const int value_size = vec.type().FixedSize();
    if (!vec.validity().RowIsValid(row)) {
      RowLayout::SetValid(dest, col, false);
      std::memset(dest + offset, 0, value_size);
      continue;
    }
    if (vec.type().id() == TypeId::kVarchar) {
      string_t owned = heap_.AddString(vec.TypedData<string_t>()[row]);
      std::memcpy(dest + offset, &owned, sizeof(string_t));
    } else {
      std::memcpy(dest + offset, vec.data() + row * value_size, value_size);
    }
  }
  UpdateMemoryAccounting();
  return slot;
}

void RowCollection::AppendChunk(const DataChunk& chunk) {
  ROWSORT_ASSERT(chunk.ColumnCount() == layout_.ColumnCount());
  const uint64_t count = chunk.size();
  const uint64_t width = layout_.row_width();
  uint64_t first = AppendUninitialized(count);
  uint8_t* base = GetRow(first);

  // Zero validity prefixes (and padding) once, then scatter column by column.
  for (uint64_t row = 0; row < count; ++row) {
    std::memset(base + row * width, 0xFF, layout_.ValidityBytes());
  }

  for (uint64_t col = 0; col < layout_.ColumnCount(); ++col) {
    const Vector& vec = chunk.column(col);
    const uint64_t offset = layout_.ColumnOffset(col);
    const int value_size = vec.type().FixedSize();
    const auto& validity = vec.validity();

    if (vec.type().id() == TypeId::kVarchar) {
      const string_t* strings = vec.TypedData<string_t>();
      for (uint64_t row = 0; row < count; ++row) {
        uint8_t* dest = base + row * width;
        if (!validity.RowIsValid(row)) {
          RowLayout::SetValid(dest, col, false);
          std::memset(dest + offset, 0, sizeof(string_t));
          continue;
        }
        // Copy the payload into our heap so the collection is self-owned.
        string_t owned = heap_.AddString(strings[row]);
        std::memcpy(dest + offset, &owned, sizeof(string_t));
      }
      UpdateMemoryAccounting();
    } else {
      const uint8_t* src = vec.data();
      for (uint64_t row = 0; row < count; ++row) {
        uint8_t* dest = base + row * width;
        if (!validity.RowIsValid(row)) {
          RowLayout::SetValid(dest, col, false);
          std::memset(dest + offset, 0, value_size);
          continue;
        }
        std::memcpy(dest + offset, src + row * value_size, value_size);
      }
    }
  }
}

namespace {

void GatherColumn(const RowLayout& layout, uint64_t col, uint64_t col_offset,
                  const uint8_t* base, uint64_t width, const uint64_t* indices,
                  uint64_t count, Vector* out) {
  const int value_size = out->type().FixedSize();
  if (out->type().id() == TypeId::kVarchar) {
    for (uint64_t i = 0; i < count; ++i) {
      const uint8_t* src = base + indices[i] * width;
      if (!RowLayout::IsValid(src, col)) {
        out->validity().SetInvalid(i);
        continue;
      }
      out->validity().SetValid(i);
      string_t value = bit_util::LoadUnaligned<string_t>(src + col_offset);
      // Copy into the output vector's heap so the chunk outlives the rows.
      out->SetString(i, value.View());
    }
  } else {
    uint8_t* dest = out->data();
    for (uint64_t i = 0; i < count; ++i) {
      const uint8_t* src = base + indices[i] * width;
      if (!RowLayout::IsValid(src, col)) {
        out->validity().SetInvalid(i);
        continue;
      }
      out->validity().SetValid(i);
      std::memcpy(dest + i * value_size, src + col_offset, value_size);
    }
  }
}

}  // namespace

void RowCollection::GatherChunk(uint64_t start, uint64_t count,
                                DataChunk* out) const {
  ROWSORT_ASSERT(start + count <= row_count_);
  ROWSORT_ASSERT(out->ColumnCount() == layout_.ColumnCount());
  ROWSORT_ASSERT(count <= out->capacity());
  std::vector<uint64_t> indices(count);
  for (uint64_t i = 0; i < count; ++i) indices[i] = start + i;
  GatherRows(indices.data(), count, out);
}

void RowCollection::GatherRows(const uint64_t* row_indices, uint64_t count,
                                DataChunk* out) const {
  ROWSORT_ASSERT(out->ColumnCount() == layout_.ColumnCount());
  const uint64_t width = layout_.row_width();
  for (uint64_t col = 0; col < layout_.ColumnCount(); ++col) {
    GatherColumn(layout_, col, layout_.ColumnOffset(col), rows_.data(), width,
                 row_indices, count, &out->column(col));
  }
  out->SetSize(count);
}

Value RowCollection::GetValue(uint64_t row, uint64_t col) const {
  ROWSORT_ASSERT(row < row_count_ && col < layout_.ColumnCount());
  const uint8_t* row_ptr = GetRow(row);
  const LogicalType& type = layout_.types()[col];
  if (!RowLayout::IsValid(row_ptr, col)) return Value::Null(type);
  const uint8_t* src = row_ptr + layout_.ColumnOffset(col);
  switch (type.id()) {
    case TypeId::kBool:
      return Value::Bool(*src != 0);
    case TypeId::kInt8:
      return Value::Int8(static_cast<int8_t>(*src));
    case TypeId::kInt16:
      return Value::Int16(bit_util::LoadUnaligned<int16_t>(src));
    case TypeId::kInt32:
      return Value::Int32(bit_util::LoadUnaligned<int32_t>(src));
    case TypeId::kDate:
      return Value::Date(bit_util::LoadUnaligned<int32_t>(src));
    case TypeId::kInt64:
      return Value::Int64(bit_util::LoadUnaligned<int64_t>(src));
    case TypeId::kUint32:
      return Value::Uint32(bit_util::LoadUnaligned<uint32_t>(src));
    case TypeId::kUint64:
      return Value::Uint64(bit_util::LoadUnaligned<uint64_t>(src));
    case TypeId::kFloat:
      return Value::Float(bit_util::LoadUnaligned<float>(src));
    case TypeId::kDouble:
      return Value::Double(bit_util::LoadUnaligned<double>(src));
    case TypeId::kVarchar: {
      string_t value = bit_util::LoadUnaligned<string_t>(src);
      return Value::Varchar(value.ToString());
    }
    case TypeId::kInvalid:
      break;
  }
  ROWSORT_ASSERT(false && "GetValue on invalid type");
  return Value();
}

}  // namespace rowsort
