// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "row/row_layout.h"

#include "common/bit_util.h"

namespace rowsort {

RowLayout::RowLayout(std::vector<LogicalType> types)
    : types_(std::move(types)) {
  validity_bytes_ = (types_.size() + 7) / 8;
  uint64_t offset = validity_bytes_;
  offsets_.reserve(types_.size());
  for (const auto& type : types_) {
    offsets_.push_back(offset);
    offset += static_cast<uint64_t>(type.FixedSize());
    if (type.id() == TypeId::kVarchar) has_varchar_ = true;
  }
  row_width_ = bit_util::AlignValue(offset, 8);
}

}  // namespace rowsort
