// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>

#include "common/macros.h"

namespace rowsort {

/// \file row_kernels.h
/// Specialized data-movement kernels for the row-format pipeline.
///
/// The paper's row format wins because conversion and merging are pure data
/// movement (§IV, §VII) — so that movement must be as cheap as the hardware
/// allows. These kernels replace the generic per-value `memcpy(dst, src,
/// runtime_width)` + per-row validity branch of the scalar reference path
/// with:
///
///  * compile-time-specialized copy loops for the fixed column widths that
///    actually occur (1/2/4/8/16 bytes — every fixed-width type plus the
///    string_t descriptor); each iteration compiles to one load/store pair
///    instead of a libc memcpy call,
///  * an all-valid fast path that checks the validity mask one 64-row word
///    at a time and runs the branchless inner loop for fully-valid words,
///  * software prefetching for the access patterns the hardware prefetcher
///    cannot predict (index-driven gathers, radix scatters, loser-tree
///    emits).
///
/// The scalar reference implementation stays callable: `SetRowKernelsEnabled
/// (false)` reverts every kernel call site to the original per-value loops
/// (the ablation baseline of `bench_data_movement`), and
/// `SortEngineConfig::use_movement_kernels` does the same for the engine's
/// batched merge copies. Both paths produce byte-identical rows.
/// See docs/architecture.md ("Data movement").

// ---------------------------------------------------------------------------
// Software prefetch
// ---------------------------------------------------------------------------

#if defined(__GNUC__) || defined(__clang__)
/// Prefetch \p addr for reading into the L2/L1 (low temporal locality).
#define ROWSORT_PREFETCH_READ(addr) __builtin_prefetch((addr), 0, 1)
/// Prefetch \p addr for writing.
#define ROWSORT_PREFETCH_WRITE(addr) __builtin_prefetch((addr), 1, 1)
#else
#define ROWSORT_PREFETCH_READ(addr) ((void)0)
#define ROWSORT_PREFETCH_WRITE(addr) ((void)0)
#endif

/// How many rows ahead index-driven gathers (GatherRows, the payload
/// reorder after run sorts) prefetch the source row. Eight rows ≈ the
/// latency of one DRAM access over the cost of one row copy; measured flat
/// between 4 and 16 on the bench workloads.
constexpr uint64_t kGatherPrefetchDistance = 8;

/// How many rows ahead the radix scatter passes prefetch the destination
/// slot. The destination of row i+d is offsets[bucket(i+d)] *at emit time*;
/// prefetching with the current counter value is off by at most d rows'
/// worth of drift — well within the prefetched line's neighborhood.
constexpr uint64_t kScatterPrefetchDistance = 8;

// ---------------------------------------------------------------------------
// Process-wide kernel toggle (ablation support)
// ---------------------------------------------------------------------------

/// True (default) when the specialized kernels are active. Kept as a
/// process-wide flag rather than per-collection state so the ablation can
/// flip every call site — including gathers on collections created before
/// the flip — without threading a config through RowCollection.
bool RowKernelsEnabled();

/// Enables/disables the specialized kernels; returns the previous value.
/// The scalar reference path is always compiled in, so flipping this is
/// safe at any point (tests flip it around individual operations).
bool SetRowKernelsEnabled(bool enabled);

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// Data-movement counters (relaxed atomics: callers may share one instance
/// across threads). The engine folds these into SortMetrics and the profile
/// root counters so the kernel win is observable through the PR 4
/// instrumentation.
struct RowKernelStats {
  /// Rows gathered (NSM->DSM) through the all-valid fast path, i.e. without
  /// a per-row validity branch. Counted per column visit: a 4-column
  /// all-valid gather of n rows adds 4n.
  std::atomic<uint64_t> gather_fast_path{0};
  /// Rows scattered (DSM->NSM) through the all-valid fast path.
  std::atomic<uint64_t> scatter_fast_path{0};
  /// Rows emitted by the merge paths as part of a multi-row batched copy
  /// (run-length >= 2) instead of per-row copies.
  std::atomic<uint64_t> rows_bulk_copied{0};
};

// ---------------------------------------------------------------------------
// Fixed-width copy kernels
// ---------------------------------------------------------------------------

namespace row_kernels {

/// One compile-time-width value copy. For W in {1,2,4,8,16} this compiles
/// to plain loads/stores (memcpy with a constant size is an intrinsic).
template <int W>
inline void CopyValue(uint8_t* dst, const uint8_t* src) {
  std::memcpy(dst, src, W);
}

/// Dense scatter: values [0, count) of a flat DSM array into NSM slots at
/// dst + i * dst_stride. The source is sequential and the destination is a
/// fixed positive stride, both patterns the hardware prefetcher handles.
template <int W>
inline void ScatterLoop(const uint8_t* src, uint8_t* dst, uint64_t dst_stride,
                        uint64_t count) {
  for (uint64_t i = 0; i < count; ++i) {
    CopyValue<W>(dst, src);
    src += W;
    dst += dst_stride;
  }
}

/// Dense sequential gather: NSM slots at src + i * src_stride into a flat
/// DSM array.
template <int W>
inline void GatherSeqLoop(const uint8_t* src, uint64_t src_stride,
                          uint8_t* dst, uint64_t count) {
  for (uint64_t i = 0; i < count; ++i) {
    CopyValue<W>(dst, src);
    src += src_stride;
    dst += W;
  }
}

/// Index-driven gather with software prefetching: rows land in arbitrary
/// order (sorted output, join matches), so each source row is a potential
/// cache miss the hardware prefetcher cannot anticipate.
template <int W>
inline void GatherIndexedLoop(const uint8_t* base, uint64_t row_stride,
                              uint64_t col_offset, const uint64_t* indices,
                              uint64_t count, uint8_t* dst) {
  for (uint64_t i = 0; i < count; ++i) {
    if (i + kGatherPrefetchDistance < count) {
      ROWSORT_PREFETCH_READ(base +
                            indices[i + kGatherPrefetchDistance] * row_stride +
                            col_offset);
    }
    CopyValue<W>(dst + i * W, base + indices[i] * row_stride + col_offset);
  }
}

}  // namespace row_kernels

// ---------------------------------------------------------------------------
// Width-dispatched entry points
// ---------------------------------------------------------------------------

/// Scatters \p count dense values of \p value_size bytes from \p src into
/// slots at \p dst + i * \p dst_stride. Widths 1/2/4/8/16 dispatch to the
/// specialized loops; other widths use a runtime-width fallback.
void ScatterColumnDense(const uint8_t* src, int value_size, uint8_t* dst,
                        uint64_t dst_stride, uint64_t count);

/// Gathers \p count sequential slots at \p src + i * \p src_stride into the
/// dense array \p dst.
void GatherColumnDense(const uint8_t* src, uint64_t src_stride, int value_size,
                       uint8_t* dst, uint64_t count);

/// Gathers \p count slots at \p base + indices[i] * \p row_stride +
/// \p col_offset into the dense array \p dst, prefetching
/// kGatherPrefetchDistance rows ahead.
void GatherColumnIndexed(const uint8_t* base, uint64_t row_stride,
                         uint64_t col_offset, const uint64_t* indices,
                         uint64_t count, int value_size, uint8_t* dst);

}  // namespace rowsort
