// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "service/flight_recorder.h"

#include <algorithm>
#include <chrono>

#include "common/string_util.h"

namespace rowsort {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t RoundUpPow2(uint64_t v) {
  uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

void AppendJsonEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(static_cast<char>(c));
    } else if (c < 0x20) {
      *out += StringFormat("\\u%04x", c);
    } else {
      out->push_back(static_cast<char>(c));
    }
  }
}

}  // namespace

const char* FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kEnqueue:
      return "enqueue";
    case FlightEventKind::kAdmit:
      return "admit";
    case FlightEventKind::kShed:
      return "shed";
    case FlightEventKind::kVictimSpill:
      return "victim_spill";
    case FlightEventKind::kDeadline:
      return "deadline";
    case FlightEventKind::kCancel:
      return "cancel";
    case FlightEventKind::kComplete:
      return "complete";
    case FlightEventKind::kFail:
      return "fail";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(uint64_t capacity)
    : capacity_(RoundUpPow2(std::max<uint64_t>(capacity, 2))),
      mask_(capacity_ - 1),
      slots_(new Slot[capacity_]) {}

FlightRecorder::~FlightRecorder() = default;

const char* FlightRecorder::InternTenant(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(intern_mutex_);
  for (const auto& entry : interned_) {
    if (*entry == tenant) return entry->c_str();
  }
  interned_.push_back(std::make_unique<std::string>(tenant));
  return interned_.back()->c_str();
}

void FlightRecorder::Record(FlightEventKind kind, uint64_t query_id,
                            const char* tenant, const char* op_class,
                            const char* priority, const char* cause,
                            uint64_t bytes) {
  const uint64_t ticket = head_.fetch_add(1, std::memory_order_acq_rel);
  Slot& slot = slots_[ticket & mask_];
  // Invalidate first so a concurrent reader cannot accept a half-updated
  // slot under the *old* published seq.
  slot.seq.store(0, std::memory_order_release);
  slot.t_ns.store(NowNs(), std::memory_order_relaxed);
  slot.query_id.store(query_id, std::memory_order_relaxed);
  slot.bytes.store(bytes, std::memory_order_relaxed);
  slot.tenant.store(tenant, std::memory_order_relaxed);
  slot.op_class.store(op_class, std::memory_order_relaxed);
  slot.priority.store(priority, std::memory_order_relaxed);
  slot.cause.store(cause, std::memory_order_relaxed);
  slot.kind.store(static_cast<uint8_t>(kind), std::memory_order_relaxed);
  // Publish: a reader that sees ticket + 1 (acquire) sees every store above.
  slot.seq.store(ticket + 1, std::memory_order_release);
}

std::vector<FlightEventView> FlightRecorder::Snapshot(int64_t last_ns) const {
  const int64_t cutoff_ns = last_ns > 0 ? NowNs() - last_ns : INT64_MIN;
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t kept = std::min(head, capacity_);
  std::vector<FlightEventView> out;
  out.reserve(kept);
  for (uint64_t ticket = head - kept; ticket < head; ++ticket) {
    const Slot& slot = slots_[ticket & mask_];
    // Seq-validated copy: accept only slots that carried this ticket's
    // publication before *and* after the field reads — a slot a concurrent
    // writer laps mid-copy fails one of the checks and is skipped (counted
    // by dropped() once the writer's ticket advances head past capacity).
    if (slot.seq.load(std::memory_order_acquire) != ticket + 1) continue;
    FlightEventView view;
    view.t_ns = slot.t_ns.load(std::memory_order_relaxed);
    view.query_id = slot.query_id.load(std::memory_order_relaxed);
    view.bytes = slot.bytes.load(std::memory_order_relaxed);
    view.tenant = slot.tenant.load(std::memory_order_relaxed);
    view.op_class = slot.op_class.load(std::memory_order_relaxed);
    view.priority = slot.priority.load(std::memory_order_relaxed);
    view.cause = slot.cause.load(std::memory_order_relaxed);
    view.kind = static_cast<FlightEventKind>(
        slot.kind.load(std::memory_order_relaxed));
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != ticket + 1) continue;
    if (view.t_ns < cutoff_ns) continue;
    out.push_back(view);
  }
  return out;
}

std::string FlightRecorder::DumpJson(int64_t last_ns) const {
  const std::vector<FlightEventView> events = Snapshot(last_ns);
  std::string out;
  out.reserve(events.size() * 120 + 128);
  out += StringFormat("{\"capacity\":%llu,\"recorded\":%llu,\"dropped\":%llu,",
                      (unsigned long long)capacity_,
                      (unsigned long long)recorded(),
                      (unsigned long long)dropped());
  out += "\"events\":[";
  const int64_t base_ns = events.empty() ? 0 : events.front().t_ns;
  for (uint64_t i = 0; i < events.size(); ++i) {
    const FlightEventView& event = events[i];
    if (i > 0) out += ",";
    out += StringFormat("{\"t_ms\":%.3f,\"kind\":\"%s\",\"query\":%llu",
                        (event.t_ns - base_ns) / 1e6,
                        FlightEventKindName(event.kind),
                        (unsigned long long)event.query_id);
    out += ",\"tenant\":\"";
    AppendJsonEscaped(&out, event.tenant);
    out += "\",\"op_class\":\"";
    AppendJsonEscaped(&out, event.op_class);
    out += "\",\"priority\":\"";
    AppendJsonEscaped(&out, event.priority);
    out += "\",\"cause\":\"";
    AppendJsonEscaped(&out, event.cause);
    out += StringFormat("\",\"bytes\":%llu}", (unsigned long long)event.bytes);
  }
  out += "]}";
  return out;
}

}  // namespace rowsort
