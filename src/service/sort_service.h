// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cancellation.h"
#include "common/histogram.h"
#include "common/memory_tracker.h"
#include "common/status.h"
#include "engine/sort_engine.h"
#include "parallel/thread_pool.h"
#include "workload/tables.h"

namespace rowsort {

/// Service-wide knobs (docs/service.md).
struct SortServiceConfig {
  /// Workers of the one shared ThreadPool (0 = hardware concurrency).
  uint64_t threads = 0;
  /// Global memory budget every query's tracker nests under (0 = unlimited).
  /// Queries whose growth would breach it trigger victim spilling.
  uint64_t memory_limit_bytes = 0;
  /// Queries running concurrently; the rest wait in the admission queue.
  uint64_t max_running = 8;
  /// Admission queue capacity. A request arriving with the queue full is
  /// shed immediately with Status::ResourceExhausted.
  uint64_t max_queued = 64;
  /// Per-tenant cap on concurrently running queries (0 = no cap): one noisy
  /// tenant cannot occupy every slot while others queue.
  uint64_t tenant_max_running = 4;
  /// Longest a request may wait for admission before being shed with
  /// Status::ResourceExhausted (0 = wait forever).
  uint64_t queue_wait_limit_ms = 0;
  /// Sink tasks submitted per admitted query (morsel-driven over the shared
  /// pool); the final merge adds its own tasks.
  uint64_t threads_per_query = 2;
  /// Per-task accounting on the shared pool (ThreadPool::EnableStats).
  bool pool_stats = false;
};

/// Per-request routing: who is asking, how urgent, how long it may take.
struct SortRequest {
  /// Tenant key for the per-tenant running cap ("" = the default tenant).
  std::string tenant;
  /// Scheduling class: admission order *and* the shared pool's queue class
  /// for the query's sink tasks.
  TaskPriority priority = TaskPriority::kNormal;
  /// Expires the whole request — while queued (Status::DeadlineExceeded
  /// without running) and while executing (engine-side cooperative cancel).
  Deadline deadline;
  /// External cancel. Polled while queued and bridged into the query's
  /// pipeline at chunk granularity once running, so it composes with
  /// \p deadline (first cause wins).
  CancellationToken cancellation;
  /// Base engine configuration (per-query memory_limit_bytes, algorithm,
  /// spill_directory, ...). The service overrides parent_tracker, governor,
  /// cancellation, and threads — those belong to the fleet, not the query.
  SortEngineConfig engine;
};

/// Counters a SortService accumulates over its lifetime; a consistent copy
/// via StatsSnapshot().
struct SortServiceStats {
  uint64_t requests = 0;   ///< Sort() calls
  uint64_t admitted = 0;   ///< granted a running slot
  uint64_t completed = 0;  ///< returned OK
  uint64_t failed = 0;     ///< non-OK after admission (excl. cancellation)
  uint64_t cancelled = 0;  ///< Cancelled/DeadlineExceeded after admission
  uint64_t shed_queue_full = 0;   ///< ResourceExhausted: queue at capacity
  uint64_t shed_wait_budget = 0;  ///< ResourceExhausted: wait budget spent
  uint64_t shed_queued_cancel = 0;  ///< deadline/cancel fired while queued
  /// EnsureCapacity rounds that forced some other query to spill.
  uint64_t victim_spills = 0;
  uint64_t victim_bytes_freed = 0;
  uint64_t max_queue_depth = 0;  ///< admission queue high-water
  uint64_t max_running = 0;      ///< concurrently-running high-water
  DurationHistogram queue_wait_ns;  ///< admission wait of admitted queries
};

/// \brief Multi-tenant sorting service: many concurrent queries over one
/// shared ThreadPool and one global memory budget (docs/service.md).
///
/// Three mechanisms keep an overloaded service useful instead of livelocked:
///
/// 1. *Admission control* — at most max_running queries execute; waiters
///    queue ordered by (priority, arrival) under per-tenant caps, and
///    requests the service cannot take (queue full, wait budget spent) are
///    shed fast with Status::ResourceExhausted rather than timing out slow.
/// 2. *Cross-query victim spilling* — when any query's growth would breach
///    the global budget, the service (as the engines' MemoryGovernor) picks
///    the victim with the lowest priority and the largest resident
///    footprint and forces it to spill runs to disk, so memory pressure
///    lands on the cheapest query instead of whoever allocated last.
/// 3. *Deadlines and cancellation* — a request's deadline and external
///    token are honored while queued and bridged into the engine's
///    cooperative-cancel machinery once running; per-query first-error /
///    first-cancel semantics are untouched.
///
/// Sort() is blocking and thread-safe: call it from one client thread per
/// in-flight query. The service must outlive every call.
class SortService : public MemoryGovernor {
 public:
  explicit SortService(SortServiceConfig config);
  ~SortService() override;
  ROWSORT_DISALLOW_COPY_AND_MOVE(SortService);

  /// Admits, runs, and returns one sort. Shed requests return
  /// Status::ResourceExhausted without touching the input; a deadline that
  /// expires while queued returns Status::DeadlineExceeded the same way.
  /// \p metrics_out (optional) receives the engine metrics even on error.
  StatusOr<Table> Sort(const Table& input, const SortSpec& spec,
                       const SortRequest& request = {},
                       SortMetrics* metrics_out = nullptr);

  /// MemoryGovernor: free global headroom for \p bytes by victim-spilling
  /// other queries (never \p requester). Called by engines mid-sink.
  void EnsureCapacity(uint64_t bytes, RelationalSort* requester) override;

  SortServiceStats StatsSnapshot() const;
  ThreadPoolStatsSnapshot PoolStatsSnapshot() const {
    return pool_.StatsSnapshot();
  }
  const MemoryTracker& memory_tracker() const { return global_tracker_; }
  uint64_t current_queue_depth() const;
  uint64_t current_running() const;

 private:
  /// One queued request; lives on its Sort() frame.
  struct Waiter {
    std::condition_variable cv;
    TaskPriority priority = TaskPriority::kNormal;
    uint64_t seq = 0;
    const std::string* tenant = nullptr;
    bool admitted = false;
  };

  /// One running query, visible to victim selection; lives on its Sort()
  /// frame. pins > 0 while EnsureCapacity is spilling it outside the lock —
  /// deregistration waits for pins to drain.
  struct ActiveQuery {
    RelationalSort* sort = nullptr;
    TaskPriority priority = TaskPriority::kNormal;
    uint64_t pins = 0;
  };

  /// Blocks until admitted or shed. OK = slot held (release via
  /// ReleaseSlot). \p waited_ns receives the queue time when admitted.
  Status Admit(const SortRequest& request, const std::string& tenant,
               const CancellationToken& queue_cancel, uint64_t* waited_ns);
  /// Admits queued waiters (priority, then arrival; tenants at their cap
  /// are passed over) while running slots remain. Call with mutex_ held
  /// whenever a slot frees or a waiter arrives.
  void PumpAdmissionLocked();
  void ReleaseSlot(const std::string& tenant);

  const SortServiceConfig config_;
  /// Global budget; every query's tracker is a child (docs/service.md).
  MemoryTracker global_tracker_;
  ThreadPool pool_;

  mutable std::mutex mutex_;
  std::deque<Waiter*> queue_;  ///< admission order; elements live on stacks
  uint64_t running_ = 0;
  uint64_t next_seq_ = 0;
  std::unordered_map<std::string, uint64_t> tenant_running_;
  std::vector<ActiveQuery*> active_;  ///< victim candidates; stack-owned
  std::condition_variable unpinned_;  ///< signals pins hitting zero
  SortServiceStats stats_;            ///< guarded by mutex_
  AtomicDurationHistogram queue_wait_ns_;
};

}  // namespace rowsort
