// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cancellation.h"
#include "common/histogram.h"
#include "common/macros.h"
#include "common/memory_tracker.h"
#include "common/metrics_registry.h"
#include "common/status.h"
#include "common/trace.h"
#include "engine/ie_join.h"
#include "engine/merge_join.h"
#include "engine/sort_engine.h"
#include "engine/window.h"
#include "parallel/thread_pool.h"
#include "service/flight_recorder.h"
#include "workload/tables.h"

namespace rowsort {

/// Service-wide knobs (docs/service.md).
struct SortServiceConfig {
  /// Workers of the one shared ThreadPool (0 = hardware concurrency).
  uint64_t threads = 0;
  /// Global memory budget every query's tracker nests under (0 = unlimited).
  /// Queries whose growth would breach it trigger victim spilling.
  uint64_t memory_limit_bytes = 0;
  /// Queries running concurrently; the rest wait in the admission queue.
  uint64_t max_running = 8;
  /// Admission queue capacity. A request arriving with the queue full is
  /// shed immediately with Status::ResourceExhausted.
  uint64_t max_queued = 64;
  /// Per-tenant cap on concurrently running queries (0 = no cap): one noisy
  /// tenant cannot occupy every slot while others queue.
  uint64_t tenant_max_running = 4;
  /// Longest a request may wait for admission before being shed with
  /// Status::ResourceExhausted (0 = wait forever).
  uint64_t queue_wait_limit_ms = 0;
  /// Sink tasks submitted per admitted query (morsel-driven over the shared
  /// pool); the final merge adds its own tasks.
  uint64_t threads_per_query = 2;
  /// Per-task accounting on the shared pool (ThreadPool::EnableStats).
  bool pool_stats = false;
  /// Express lane: dedicated running slots, *in addition to* max_running,
  /// reserved for requests whose estimated working set is at most
  /// express_max_bytes — a Top-10 never queues behind a spilling giant
  /// (docs/service.md). 0 disables the lane. Express-eligible requests may
  /// still take a general slot when one is free.
  uint64_t express_slots = 2;
  /// Estimated-working-set ceiling for express eligibility.
  uint64_t express_max_bytes = 8ull << 20;
  /// Service telemetry (docs/observability.md, "Service telemetry"): the
  /// metrics registry, its sampling collector, and the flight recorder.
  /// Off = none of them exist; admission pays only the atomic service
  /// counters (the <2% overhead budget the bench checks).
  bool telemetry = true;
  /// Collector sampling period for the registry's time-series rings
  /// (0 = no collector thread; SampleNow() still works).
  uint64_t telemetry_sample_interval_ms = 100;
  /// Flight-recorder ring capacity (events; rounded up to a power of two).
  uint64_t flight_recorder_capacity = 1 << 14;
  /// Service-level tracer: request spans (service.queued / service.run /
  /// service.finalize) plus every admitted query's engine spans land here,
  /// each query under its own process-unique scope, so one export shows all
  /// concurrent queries stitched ("Stitched cross-query traces"). Overrides
  /// any per-request engine tracer. Null = no service tracing. Must outlive
  /// the service.
  Tracer* trace = nullptr;
};

/// The operator a request routes to (ROADMAP item 1: every sort-family
/// operator goes through the same admission/budget/cancel machinery).
enum class OperatorKind : uint8_t {
  kSort = 0,   ///< full ORDER BY via RelationalSort
  kTopN,       ///< ORDER BY ... LIMIT n via the bounded-heap TopN
  kWindow,     ///< ranking window functions via ComputeWindow
  kMergeJoin,  ///< sort-merge equi-join (binary)
  kIEJoin,     ///< two-predicate inequality join (binary)
};
constexpr uint64_t kOperatorKindCount = 5;
const char* OperatorKindName(OperatorKind op);

/// Per-request routing: who is asking, how urgent, how long it may take.
struct SortRequest {
  /// Tenant key for the per-tenant running cap ("" = the default tenant).
  std::string tenant;
  /// Scheduling class: admission order *and* the shared pool's queue class
  /// for the query's sink tasks.
  TaskPriority priority = TaskPriority::kNormal;
  /// Expires the whole request — while queued (Status::DeadlineExceeded
  /// without running) and while executing (engine-side cooperative cancel).
  Deadline deadline;
  /// External cancel. Observed while queued and linked into the query's
  /// engine-facing token once running, so it composes with \p deadline
  /// (first cause wins) at chunk granularity.
  CancellationToken cancellation;
  /// Base engine configuration (per-query memory_limit_bytes, algorithm,
  /// spill_directory, ...). The service overrides parent_tracker, governor,
  /// cancellation, and threads — those belong to the fleet, not the query.
  SortEngineConfig engine;
};

/// \brief One governed request against the unified Submit() surface: the
/// routing fields every operator shares plus the operator-specific payload
/// (only the fields for \p op are read).
struct OperatorRequest {
  OperatorKind op = OperatorKind::kSort;

  // Routing (same semantics as SortRequest).
  std::string tenant;
  TaskPriority priority = TaskPriority::kNormal;
  Deadline deadline;
  CancellationToken cancellation;
  SortEngineConfig engine;

  // kSort / kTopN: the ordering. kTopN additionally needs limit > 0.
  SortSpec spec;
  uint64_t limit = 0;

  // kWindow.
  WindowSpec window;
  std::vector<WindowFunction> functions;

  // kMergeJoin.
  std::vector<JoinKey> keys;

  // kIEJoin.
  InequalityPredicate pred1;
  InequalityPredicate pred2;
};

/// Admission/outcome counters for one operator class.
struct OperatorClassStats {
  uint64_t requests = 0;   ///< Submit() calls for this class
  uint64_t admitted = 0;   ///< granted a running slot (either lane)
  uint64_t shed = 0;       ///< refused before running (full queue, wait
                           ///< budget, queued deadline/cancel)
  uint64_t completed = 0;  ///< returned OK
  uint64_t failed = 0;     ///< non-OK after admission (excl. cancellation)
  uint64_t cancelled = 0;  ///< Cancelled/DeadlineExceeded after admission
};

/// Counters a SortService accumulates over its lifetime; a consistent copy
/// via StatsSnapshot().
struct SortServiceStats {
  uint64_t requests = 0;   ///< Sort()/Submit() calls
  uint64_t admitted = 0;   ///< granted a running slot
  uint64_t completed = 0;  ///< returned OK
  uint64_t failed = 0;     ///< non-OK after admission (excl. cancellation)
  uint64_t cancelled = 0;  ///< Cancelled/DeadlineExceeded after admission
  uint64_t shed_queue_full = 0;   ///< ResourceExhausted: queue at capacity
  uint64_t shed_wait_budget = 0;  ///< ResourceExhausted: wait budget spent
  uint64_t shed_queued_cancel = 0;  ///< deadline/cancel fired while queued
  /// EnsureCapacity rounds that forced some other query to spill.
  uint64_t victim_spills = 0;
  uint64_t victim_bytes_freed = 0;
  uint64_t max_queue_depth = 0;  ///< admission queue high-water
  uint64_t max_running = 0;      ///< concurrently-running high-water (general)
  /// Express lane: admissions into the dedicated small-query slots, and
  /// their concurrent high-water.
  uint64_t express_admitted = 0;
  uint64_t max_express_running = 0;
  /// Per-operator-class breakdown, indexed by OperatorKind.
  OperatorClassStats op_class[kOperatorKindCount];
  DurationHistogram queue_wait_ns;  ///< admission wait of admitted queries
};

/// \brief Multi-tenant sorting service: many concurrent queries over one
/// shared ThreadPool and one global memory budget (docs/service.md).
///
/// Every sort-family operator — full sorts, Top-N, window functions, and
/// the two join kinds — routes through one Submit() surface and gets the
/// same treatment. Three mechanisms keep an overloaded service useful
/// instead of livelocked:
///
/// 1. *Admission control* — at most max_running queries execute; waiters
///    queue ordered by (priority, arrival) under per-tenant caps, and
///    requests the service cannot take (queue full, wait budget spent) are
///    shed fast with Status::ResourceExhausted rather than timing out slow.
///    Requests with a small estimated working set (a cost class computed
///    from the operator and its inputs) are eligible for the *express lane*:
///    dedicated running slots that keep a bounded-memory Top-N from queueing
///    behind spilling giants.
/// 2. *Cross-query victim spilling* — when any query's growth would breach
///    the global budget, the service (as the engines' MemoryGovernor) picks
///    the victim with the lowest priority and the largest resident
///    footprint and forces it to spill runs to disk, so memory pressure
///    lands on the cheapest query instead of whoever allocated last. Every
///    governed engine registers itself (MemoryGovernor::RegisterSort) —
///    including sorts nested inside window/join operators.
/// 3. *Deadlines and cancellation* — a request's deadline and external
///    token are honored while queued and linked into the engine's
///    cooperative-cancel machinery once running; per-query first-error /
///    first-cancel semantics are untouched.
///
/// Sort()/Submit() are blocking and thread-safe: call them from one client
/// thread per in-flight query. The service must outlive every call.
class SortService : public MemoryGovernor {
 public:
  explicit SortService(SortServiceConfig config);
  ~SortService() override;
  ROWSORT_DISALLOW_COPY_AND_MOVE(SortService);

  /// Admits, runs, and returns one sort. Shed requests return
  /// Status::ResourceExhausted without touching the input; a deadline that
  /// expires while queued returns Status::DeadlineExceeded the same way.
  /// \p metrics_out (optional) receives the engine metrics even on error.
  /// Equivalent to Submit() with op = kSort.
  StatusOr<Table> Sort(const Table& input, const SortSpec& spec,
                       const SortRequest& request = {},
                       SortMetrics* metrics_out = nullptr);

  /// Unified surface for the unary operators (kSort, kTopN, kWindow): the
  /// request is admitted under the same queue/caps/budget as every other
  /// operator and executed with the service's tracker chain, governor, and
  /// linked cancellation. Output is byte-identical to invoking the operator
  /// directly with the same engine config. Join kinds return
  /// Status::InvalidArgument here (they need two inputs).
  StatusOr<Table> Submit(const Table& input, const OperatorRequest& request,
                         SortMetrics* metrics_out = nullptr);

  /// Binary-operator Submit (kMergeJoin, kIEJoin); unary kinds return
  /// Status::InvalidArgument here.
  StatusOr<Table> Submit(const Table& left, const Table& right,
                         const OperatorRequest& request,
                         SortMetrics* metrics_out = nullptr);

  /// The cost class fed into admission: a request's estimated peak working
  /// set in bytes (keys + payload for sorts and window, bounded candidate
  /// storage for Top-N, both inputs plus match lists for joins). Requests
  /// at or under SortServiceConfig::express_max_bytes are express-eligible.
  /// \p right is ignored for unary operators. Exposed for tests/benches.
  static uint64_t EstimateWorkingSetBytes(const OperatorRequest& request,
                                          const Table& left,
                                          const Table* right);

  /// MemoryGovernor: free global headroom for \p bytes by victim-spilling
  /// other queries (never \p requester). Called by engines mid-sink.
  void EnsureCapacity(uint64_t bytes, RelationalSort* requester) override;
  /// MemoryGovernor registry: every governed engine announces itself here
  /// (RelationalSort's constructor/destructor do this automatically), which
  /// is what makes sorts nested inside window/join operators visible to
  /// victim selection.
  void RegisterSort(RelationalSort* sort, TaskPriority priority) override;
  void UnregisterSort(RelationalSort* sort) override;

  /// Consistent counter copy, *contention-free*: reads only atomics (no
  /// service mutex), so a 10 Hz scraper never delays admission. The ledger
  /// invariants hold in any snapshot, even mid-storm:
  ///   requests >= admitted + shed,  admitted >= completed+failed+cancelled
  /// (release increments + acquire loads in downstream-first order).
  SortServiceStats StatsSnapshot() const;
  ThreadPoolStatsSnapshot PoolStatsSnapshot() const {
    return pool_.StatsSnapshot();
  }
  const MemoryTracker& memory_tracker() const { return global_tracker_; }
  uint64_t current_queue_depth() const {
    return queue_depth_.load(std::memory_order_relaxed);
  }
  uint64_t current_running() const {
    return running_.load(std::memory_order_relaxed);
  }
  uint64_t current_express_running() const {
    return express_running_.load(std::memory_order_relaxed);
  }

  /// The registry / recorder behind the exports; null when
  /// SortServiceConfig::telemetry is off. Valid for the service's lifetime.
  MetricsRegistry* metrics_registry() const { return metrics_.get(); }
  FlightRecorder* flight_recorder() const { return flight_.get(); }

  /// Prometheus text exposition of every service metric ("" with telemetry
  /// off). Safe to call from a scraper thread at any rate.
  std::string ExportMetricsText() const;
  /// One JSON document: service counters + ledger, registry metrics with
  /// their sampled time-series, and the flight-recorder summary. Works with
  /// telemetry off (counters only).
  std::string ExportTelemetryJson() const;
  /// Flight-recorder JSON dump ("{}" with telemetry off); \p last_ns > 0
  /// keeps only events newer than that.
  std::string DumpFlightRecorder(int64_t last_ns = 0) const;

 private:
  /// Cached registry handles for one (tenant, op_class, priority) series
  /// set: resolved once per combination under telemetry_mutex_, then every
  /// request of that combination records wait-free. Null handles when
  /// telemetry is off.
  struct TelemetryHandles {
    Counter* requests = nullptr;
    Counter* admitted = nullptr;
    Counter* express_admitted = nullptr;
    Counter* completed = nullptr;
    Counter* failed = nullptr;
    Counter* cancelled = nullptr;
    Counter* shed_queue_full = nullptr;
    Counter* shed_wait_budget = nullptr;
    Counter* shed_queued_cancel = nullptr;
    HistogramMetric* queue_wait = nullptr;  ///< enqueue -> admitted
    HistogramMetric* run_time = nullptr;    ///< admitted -> body returned
    HistogramMetric* end_to_end = nullptr;  ///< enqueue -> outcome recorded
    const char* tenant = "";    ///< interned in the flight recorder
    const char* op_class = "";  ///< OperatorKindName literal
    const char* priority = "";  ///< TaskPriorityName literal
  };

  /// Atomic mirror of OperatorClassStats (see StatsSnapshot's contract).
  struct AtomicOpClassStats {
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> admitted{0};
    std::atomic<uint64_t> shed{0};
    std::atomic<uint64_t> completed{0};
    std::atomic<uint64_t> failed{0};
    std::atomic<uint64_t> cancelled{0};
  };

  /// One queued request; lives on its Submit() frame.
  struct Waiter {
    std::condition_variable cv;
    TaskPriority priority = TaskPriority::kNormal;
    uint64_t seq = 0;
    const std::string* tenant = nullptr;
    OperatorKind op = OperatorKind::kSort;
    const TelemetryHandles* telemetry = nullptr;  ///< null when off
    uint64_t query_id = 0;
    bool express_eligible = false;
    bool admitted = false;
    bool in_express = false;  ///< seated in the express lane (vs general)
  };

  /// One registered engine, visible to victim selection; owned by the
  /// registry (RegisterSort / UnregisterSort). pins > 0 while EnsureCapacity
  /// is spilling it outside the lock — deregistration waits for pins to
  /// drain before the engine may die. query_id/tenant identify the service
  /// request the engine belongs to (from the thread-local request context;
  /// zero/empty for engines registered outside a service request).
  struct ActiveQuery {
    RelationalSort* sort = nullptr;
    TaskPriority priority = TaskPriority::kNormal;
    uint64_t pins = 0;
    uint64_t query_id = 0;
    const char* tenant = "";
    const char* op_class = "";
    const char* priority_name = "";
  };

  /// The cached handle set for (tenant, op, priority); null with telemetry
  /// off. Takes telemetry_mutex_ on a combination's first request only.
  const TelemetryHandles* ResolveTelemetry(const std::string& tenant,
                                           OperatorKind op,
                                           TaskPriority priority);
  /// Registers the callback gauges + starts the collector (constructor).
  void InitTelemetry();
  /// Publishes a finished sort's spill-compression byte counters
  /// (SortMetrics::spill_bytes_raw / spill_bytes_compressed) to the
  /// registry, labeled by tenant. No-op when nothing spilled or telemetry
  /// is off; spills are rare enough that the registry lock is fine here.
  void RecordSpillCompression(const std::string& tenant,
                              const SortMetrics& metrics);

  /// Blocks until admitted or shed. OK = slot held (release via
  /// ReleaseSlot). \p waited_ns receives the queue time and \p in_express
  /// the lane when admitted. \p telemetry/\p query_id ride on the waiter so
  /// the admission pump can attribute its decisions.
  Status Admit(const OperatorRequest& request, const std::string& tenant,
               bool express_eligible, const CancellationToken& queue_cancel,
               const TelemetryHandles* telemetry, uint64_t query_id,
               uint64_t* waited_ns, bool* in_express);
  /// Admits queued waiters (priority, then arrival; tenants at their cap
  /// are passed over; express-eligible waiters may take either lane) while
  /// slots remain. Call with mutex_ held whenever a slot frees or a waiter
  /// arrives.
  void PumpAdmissionLocked();
  void ReleaseSlot(const std::string& tenant, bool in_express);
  /// Everything between admission and outcome classification, shared by all
  /// operator kinds: builds the governed engine config and runs \p body.
  /// \p estimated_bytes is the admission cost class (flight-recorder
  /// attribution).
  StatusOr<Table> RunGoverned(
      const OperatorRequest& request, bool express_eligible,
      uint64_t estimated_bytes,
      const std::function<StatusOr<Table>(const SortEngineConfig&,
                                          const CancellationToken&)>& body);

  const SortServiceConfig config_;
  /// Global budget; every query's tracker is a child (docs/service.md).
  MemoryTracker global_tracker_;
  ThreadPool pool_;

  mutable std::mutex mutex_;
  std::deque<Waiter*> queue_;  ///< admission order; elements live on stacks
  /// Lane occupancy + queue depth: written under mutex_, atomic so gauges
  /// and the metrics collector sample them lock-free.
  std::atomic<uint64_t> running_{0};          ///< general-lane occupancy
  std::atomic<uint64_t> express_running_{0};  ///< express-lane occupancy
  std::atomic<uint64_t> queue_depth_{0};      ///< mirrors queue_.size()
  uint64_t next_seq_ = 0;
  std::unordered_map<std::string, uint64_t> tenant_running_;
  std::vector<ActiveQuery*> active_;  ///< victim registry; heap-owned
  std::atomic<uint64_t> active_count_{0};  ///< mirrors active_.size()
  std::condition_variable unpinned_;  ///< signals pins hitting zero

  /// Service counters, all atomic — StatsSnapshot() never takes mutex_.
  /// Outcome/admission/request increments use release ordering; see
  /// StatsSnapshot() for the matching read protocol. The high-water marks
  /// are only written under mutex_ (plain max), read relaxed.
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> shed_queue_full_{0};
  std::atomic<uint64_t> shed_wait_budget_{0};
  std::atomic<uint64_t> shed_queued_cancel_{0};
  std::atomic<uint64_t> victim_spills_{0};
  std::atomic<uint64_t> victim_bytes_freed_{0};
  std::atomic<uint64_t> max_queue_depth_{0};
  std::atomic<uint64_t> max_running_{0};
  std::atomic<uint64_t> express_admitted_{0};
  std::atomic<uint64_t> max_express_running_{0};
  AtomicOpClassStats op_class_[kOperatorKindCount];
  AtomicDurationHistogram queue_wait_ns_;

  /// -- telemetry (null / empty when config_.telemetry is off) ----------
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<FlightRecorder> flight_;
  mutable std::mutex telemetry_mutex_;  ///< guards handles_ resolution
  /// Key "tenant|op_class|priority" -> heap-stable handle set.
  std::unordered_map<std::string, std::unique_ptr<TelemetryHandles>> handles_;
};

}  // namespace rowsort
