// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/macros.h"

namespace rowsort {

/// \file flight_recorder.h
/// Lock-free ring of structured service decisions (docs/observability.md,
/// "Tenant flight recorder").
///
/// Aggregate counters say *how many* requests were shed; they cannot say
/// *which* tenant lost *which* query to *which* cause two seconds before the
/// page. The flight recorder keeps the last N admission-control decisions —
/// enqueue, admit, shed (with cause), victim spill (with freed bytes),
/// deadline, cancel, complete, fail — as fixed-size slots in a lock-free
/// MPMC ring, so the history survives exactly the overload storms it exists
/// to explain:
///  - Record() is a fetch_add ticket plus relaxed field stores and one
///    release publish — no locks, no allocation, wait-free for writers.
///  - When the ring wraps, the oldest events are overwritten (and counted
///    as dropped), never blocking an admission decision.
///  - Readers validate each slot's sequence number before and after copying
///    it; a slot caught mid-overwrite is skipped, not torn.
///
/// All strings stored in events are either static literals (kind, cause,
/// op_class, priority names) or interned via InternTenant(), so slots stay
/// trivially copyable and writers never touch std::string.

/// What happened. Order is meaningless; names via FlightEventKindName().
enum class FlightEventKind : uint8_t {
  kEnqueue = 0,      ///< request entered the admission queue
  kAdmit,            ///< request got a running slot (bytes = working set)
  kShed,             ///< request rejected (cause = queue_full / wait_budget /
                     ///< queued_cancel / queued_deadline)
  kVictimSpill,      ///< governor freed bytes from a victim query
  kDeadline,         ///< running query hit its deadline
  kCancel,           ///< running query observed a cancel request
  kComplete,         ///< query finished OK (bytes = working set estimate)
  kFail,             ///< query failed with a non-cancel error
};
constexpr uint64_t kFlightEventKindCount = 8;

const char* FlightEventKindName(FlightEventKind kind);

/// One decoded event, as returned by Snapshot(). String fields point at
/// static literals / interned tenants owned by the recorder — valid for the
/// recorder's lifetime.
struct FlightEventView {
  int64_t t_ns = 0;      ///< steady-clock stamp (same base as Tracer)
  uint64_t query_id = 0; ///< service-assigned, process-unique (0 = n/a)
  FlightEventKind kind = FlightEventKind::kEnqueue;
  const char* tenant = "";    ///< interned
  const char* op_class = "";  ///< OperatorKindName() literal
  const char* priority = "";  ///< TaskPriorityName() literal
  const char* cause = "";     ///< shed/fail cause literal ("" = none)
  uint64_t bytes = 0;         ///< working set / freed bytes (kind-specific)
};

/// \brief Fixed-capacity lock-free MPMC event ring with JSON dump.
class FlightRecorder {
 public:
  /// \p capacity is rounded up to a power of two. 16Ki slots at 72 bytes a
  /// slot is ~1.2 MiB — minutes of history at realistic shed rates.
  explicit FlightRecorder(uint64_t capacity = 1 << 14);
  ~FlightRecorder();
  ROWSORT_DISALLOW_COPY_AND_MOVE(FlightRecorder);

  /// Returns a stable char pointer for \p tenant, creating the interned
  /// copy on first use (under a mutex — callers cache the result per
  /// tenant, so the hot path never lands here).
  const char* InternTenant(const std::string& tenant);

  /// Appends one event. Wait-free; safe from any thread. All pointer
  /// arguments must be static literals or InternTenant() results.
  void Record(FlightEventKind kind, uint64_t query_id, const char* tenant,
              const char* op_class, const char* priority, const char* cause,
              uint64_t bytes);

  /// The retained events, oldest first. \p last_ns > 0 keeps only events
  /// newer than (now - last_ns). Slots caught mid-overwrite are skipped.
  std::vector<FlightEventView> Snapshot(int64_t last_ns = 0) const;

  /// JSON dump: {"capacity":N,"recorded":N,"dropped":N,"events":[
  ///   {"t_ms":...,"kind":"shed","query":7,"tenant":"acme","op_class":...,
  ///    "priority":...,"cause":"queue_full","bytes":N},...]}
  /// with t_ms relative to the oldest dumped event. \p last_ns as above.
  std::string DumpJson(int64_t last_ns = 0) const;

  /// Events recorded since construction (including overwritten ones).
  uint64_t recorded() const {
    return head_.load(std::memory_order_acquire);
  }
  /// Events lost to ring wraparound.
  uint64_t dropped() const {
    const uint64_t head = recorded();
    return head > capacity_ ? head - capacity_ : 0;
  }
  uint64_t capacity() const { return capacity_; }

 private:
  /// All-atomic slot: relaxed stores/loads keep the seq-validated copy
  /// data-race-free (TSan-clean) without ordering cost on the hot path.
  struct Slot {
    /// 0 = never written; ticket + 1 = published. A reader seeing the same
    /// published value before and after its copy got a consistent slot.
    std::atomic<uint64_t> seq{0};
    std::atomic<int64_t> t_ns{0};
    std::atomic<uint64_t> query_id{0};
    std::atomic<uint64_t> bytes{0};
    std::atomic<const char*> tenant{""};
    std::atomic<const char*> op_class{""};
    std::atomic<const char*> priority{""};
    std::atomic<const char*> cause{""};
    std::atomic<uint8_t> kind{0};
  };

  const uint64_t capacity_;  ///< power of two
  const uint64_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> head_{0};  ///< next ticket

  mutable std::mutex intern_mutex_;
  /// Interned tenant names; unique_ptr<std::string> keeps c_str() stable
  /// across vector growth.
  std::vector<std::unique_ptr<std::string>> interned_;
};

}  // namespace rowsort
