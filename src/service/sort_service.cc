// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "service/sort_service.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "common/string_util.h"
#include "engine/top_n.h"
#include "row/row_layout.h"

namespace rowsort {

namespace {

/// Queued waiters poll their shed conditions (deadline, external cancel) at
/// this granularity — their cv is only notified on admission.
constexpr int64_t kQueuePollMillis = 20;

const std::string& EffectiveTenant(const std::string& tenant) {
  static const std::string kDefault = "default";
  return tenant.empty() ? kDefault : tenant;
}

uint64_t OpIndex(OperatorKind op) { return static_cast<uint64_t>(op); }

/// Identity of the service request executing on this thread, installed by
/// RunGoverned around the operator body. RegisterSort reads it to attribute
/// governed engines (including sorts nested inside window/join operators) to
/// their query — which is what lets a victim-spill flight event name the
/// victim's tenant and query id.
struct RequestContext {
  uint64_t query_id = 0;
  const char* tenant = "";
  const char* op_class = "";
  const char* priority = "";
};
thread_local const RequestContext* t_request_context = nullptr;

}  // namespace

const char* OperatorKindName(OperatorKind op) {
  switch (op) {
    case OperatorKind::kSort:
      return "sort";
    case OperatorKind::kTopN:
      return "top_n";
    case OperatorKind::kWindow:
      return "window";
    case OperatorKind::kMergeJoin:
      return "merge_join";
    case OperatorKind::kIEJoin:
      return "ie_join";
  }
  return "unknown";
}

SortService::SortService(SortServiceConfig config)
    : config_(std::move(config)),
      global_tracker_(config_.memory_limit_bytes),
      pool_(config_.threads) {
  if (config_.pool_stats) pool_.EnableStats(true);
  if (config_.trace != nullptr) pool_.SetTracer(config_.trace);
  InitTelemetry();
}

SortService::~SortService() {
  // The collector samples callback gauges that read this service's members;
  // stop it before any of them dies.
  if (metrics_ != nullptr) metrics_->StopCollector();
}

void SortService::InitTelemetry() {
  if (!config_.telemetry) return;
  metrics_ = std::make_unique<MetricsRegistry>();
  flight_ = std::make_unique<FlightRecorder>(config_.flight_recorder_capacity);
  // Every callback below is a relaxed atomic load — the collector thread can
  // never contend with admission, and the gauges are honest even mid-storm.
  metrics_->RegisterCallbackGauge(
      "rowsort_service_queue_depth", "Requests waiting for admission", {},
      [this] { return static_cast<int64_t>(current_queue_depth()); });
  metrics_->RegisterCallbackGauge(
      "rowsort_service_running", "Queries holding a general running slot", {},
      [this] { return static_cast<int64_t>(current_running()); });
  metrics_->RegisterCallbackGauge(
      "rowsort_service_express_running",
      "Queries holding an express-lane slot", {},
      [this] { return static_cast<int64_t>(current_express_running()); });
  metrics_->RegisterCallbackGauge(
      "rowsort_service_active_queries",
      "Governed engines registered for victim selection", {}, [this] {
        return static_cast<int64_t>(
            active_count_.load(std::memory_order_relaxed));
      });
  metrics_->RegisterCallbackGauge(
      "rowsort_pool_queue_depth", "Tasks queued on the shared thread pool",
      {}, [this] { return static_cast<int64_t>(pool_.queue_depth()); });
  metrics_->RegisterCallbackGauge(
      "rowsort_memory_reserved_bytes",
      "Bytes reserved against the global memory budget", {},
      [this] { return static_cast<int64_t>(global_tracker_.reserved()); });
  metrics_->RegisterCallbackGauge(
      "rowsort_memory_peak_bytes",
      "High-water mark of the global memory budget", {},
      [this] { return static_cast<int64_t>(global_tracker_.peak()); });
  metrics_->RegisterCallbackGauge(
      "rowsort_memory_limit_bytes",
      "Global memory budget (0 = unlimited)", {},
      [this] { return static_cast<int64_t>(global_tracker_.limit()); });
  if (config_.telemetry_sample_interval_ms > 0) {
    metrics_->StartCollector(config_.telemetry_sample_interval_ms);
  }
}

const SortService::TelemetryHandles* SortService::ResolveTelemetry(
    const std::string& tenant, OperatorKind op, TaskPriority priority) {
  if (metrics_ == nullptr) return nullptr;
  const char* op_name = OperatorKindName(op);
  const char* pri_name = TaskPriorityName(priority);
  std::string key = tenant;
  key += '|';
  key += op_name;
  key += '|';
  key += pri_name;
  {
    std::lock_guard<std::mutex> lock(telemetry_mutex_);
    auto it = handles_.find(key);
    if (it != handles_.end()) return it->second.get();
  }
  // First request of this combination: resolve every handle outside
  // telemetry_mutex_ (the registry has its own lock), then publish. A racing
  // resolver gets the same registry handles, so whichever insert wins is
  // equivalent.
  auto handles = std::make_unique<TelemetryHandles>();
  const MetricLabels labels = {
      {"tenant", tenant}, {"op_class", op_name}, {"priority", pri_name}};
  auto shed_labels = [&](const char* cause) {
    MetricLabels with_cause = labels;
    with_cause.push_back({"cause", cause});
    return with_cause;
  };
  handles->requests = metrics_->GetCounter(
      "rowsort_service_requests_total", "Service requests received", labels);
  handles->admitted = metrics_->GetCounter(
      "rowsort_service_admitted_total",
      "Requests granted a running slot (either lane)", labels);
  handles->express_admitted = metrics_->GetCounter(
      "rowsort_service_express_admitted_total",
      "Requests seated in the express lane", labels);
  handles->completed = metrics_->GetCounter(
      "rowsort_service_completed_total", "Requests that returned OK", labels);
  handles->failed = metrics_->GetCounter(
      "rowsort_service_failed_total",
      "Requests that failed after admission (excluding cancellation)",
      labels);
  handles->cancelled = metrics_->GetCounter(
      "rowsort_service_cancelled_total",
      "Requests cancelled or deadline-expired after admission", labels);
  const char* shed_help = "Requests refused before running, by cause";
  handles->shed_queue_full = metrics_->GetCounter(
      "rowsort_service_shed_total", shed_help, shed_labels("queue_full"));
  handles->shed_wait_budget = metrics_->GetCounter(
      "rowsort_service_shed_total", shed_help, shed_labels("wait_budget"));
  handles->shed_queued_cancel = metrics_->GetCounter(
      "rowsort_service_shed_total", shed_help, shed_labels("queued_cancel"));
  handles->queue_wait = metrics_->GetHistogram(
      "rowsort_service_queue_wait_seconds",
      "Admission-queue wait of admitted requests", labels);
  handles->run_time = metrics_->GetHistogram(
      "rowsort_service_run_seconds",
      "Operator execution time of admitted requests", labels);
  handles->end_to_end = metrics_->GetHistogram(
      "rowsort_service_end_to_end_seconds",
      "Enqueue-to-outcome latency of admitted requests", labels);
  handles->tenant = flight_->InternTenant(tenant);
  handles->op_class = op_name;
  handles->priority = pri_name;

  std::lock_guard<std::mutex> lock(telemetry_mutex_);
  auto inserted = handles_.emplace(std::move(key), std::move(handles));
  return inserted.first->second.get();
}

SortServiceStats SortService::StatsSnapshot() const {
  SortServiceStats out;
  // Downstream-first read order against the release increments: outcomes,
  // then shed + admitted, then requests — per class and globally. Any
  // admission in `admitted` was preceded (happens-before, through the
  // acquire load that observed it) by its own `requests` increment, and any
  // outcome by its `admitted` increment, so a snapshot taken mid-storm still
  // satisfies requests >= admitted + shed >= outcomes + shed.
  for (uint64_t i = 0; i < kOperatorKindCount; ++i) {
    OperatorClassStats& cls = out.op_class[i];
    cls.cancelled = op_class_[i].cancelled.load(std::memory_order_acquire);
    cls.failed = op_class_[i].failed.load(std::memory_order_acquire);
    cls.completed = op_class_[i].completed.load(std::memory_order_acquire);
    cls.shed = op_class_[i].shed.load(std::memory_order_acquire);
    cls.admitted = op_class_[i].admitted.load(std::memory_order_acquire);
    cls.requests = op_class_[i].requests.load(std::memory_order_acquire);
  }
  out.cancelled = cancelled_.load(std::memory_order_acquire);
  out.failed = failed_.load(std::memory_order_acquire);
  out.completed = completed_.load(std::memory_order_acquire);
  out.shed_queue_full = shed_queue_full_.load(std::memory_order_acquire);
  out.shed_wait_budget = shed_wait_budget_.load(std::memory_order_acquire);
  out.shed_queued_cancel = shed_queued_cancel_.load(std::memory_order_acquire);
  out.admitted = admitted_.load(std::memory_order_acquire);
  out.requests = requests_.load(std::memory_order_acquire);
  out.victim_spills = victim_spills_.load(std::memory_order_relaxed);
  out.victim_bytes_freed = victim_bytes_freed_.load(std::memory_order_relaxed);
  out.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  out.max_running = max_running_.load(std::memory_order_relaxed);
  out.express_admitted = express_admitted_.load(std::memory_order_relaxed);
  out.max_express_running =
      max_express_running_.load(std::memory_order_relaxed);
  out.queue_wait_ns = queue_wait_ns_.Snapshot();
  return out;
}

std::string SortService::ExportMetricsText() const {
  return metrics_ != nullptr ? metrics_->ExportPrometheusText()
                             : std::string();
}

std::string SortService::DumpFlightRecorder(int64_t last_ns) const {
  return flight_ != nullptr ? flight_->DumpJson(last_ns) : std::string("{}");
}

std::string SortService::ExportTelemetryJson() const {
  const SortServiceStats stats = StatsSnapshot();
  std::string out = "{\"service\":{";
  out += StringFormat(
      "\"requests\":%llu,\"admitted\":%llu,\"completed\":%llu,"
      "\"failed\":%llu,\"cancelled\":%llu,\"shed_queue_full\":%llu,"
      "\"shed_wait_budget\":%llu,\"shed_queued_cancel\":%llu,"
      "\"victim_spills\":%llu,\"victim_bytes_freed\":%llu,"
      "\"express_admitted\":%llu,\"max_queue_depth\":%llu,"
      "\"max_running\":%llu,\"max_express_running\":%llu",
      (unsigned long long)stats.requests, (unsigned long long)stats.admitted,
      (unsigned long long)stats.completed, (unsigned long long)stats.failed,
      (unsigned long long)stats.cancelled,
      (unsigned long long)stats.shed_queue_full,
      (unsigned long long)stats.shed_wait_budget,
      (unsigned long long)stats.shed_queued_cancel,
      (unsigned long long)stats.victim_spills,
      (unsigned long long)stats.victim_bytes_freed,
      (unsigned long long)stats.express_admitted,
      (unsigned long long)stats.max_queue_depth,
      (unsigned long long)stats.max_running,
      (unsigned long long)stats.max_express_running);
  out += ",\"op_class\":{";
  for (uint64_t i = 0; i < kOperatorKindCount; ++i) {
    const OperatorClassStats& cls = stats.op_class[i];
    if (i > 0) out += ",";
    out += StringFormat(
        "\"%s\":{\"requests\":%llu,\"admitted\":%llu,\"shed\":%llu,"
        "\"completed\":%llu,\"failed\":%llu,\"cancelled\":%llu}",
        OperatorKindName(static_cast<OperatorKind>(i)),
        (unsigned long long)cls.requests, (unsigned long long)cls.admitted,
        (unsigned long long)cls.shed, (unsigned long long)cls.completed,
        (unsigned long long)cls.failed, (unsigned long long)cls.cancelled);
  }
  out += "},\"queue_wait_ns\":" + stats.queue_wait_ns.ToJson();
  out += StringFormat(
      ",\"queue_depth\":%llu,\"running\":%llu,\"express_running\":%llu,"
      "\"active_queries\":%llu",
      (unsigned long long)current_queue_depth(),
      (unsigned long long)current_running(),
      (unsigned long long)current_express_running(),
      (unsigned long long)active_count_.load(std::memory_order_relaxed));
  out += StringFormat(
      ",\"memory\":{\"reserved_bytes\":%llu,\"peak_bytes\":%llu,"
      "\"limit_bytes\":%llu}}",
      (unsigned long long)global_tracker_.reserved(),
      (unsigned long long)global_tracker_.peak(),
      (unsigned long long)global_tracker_.limit());
  if (metrics_ != nullptr) {
    out += ",\"metrics\":" + metrics_->ExportJson();
  }
  if (flight_ != nullptr) {
    out += StringFormat(
        ",\"flight_recorder\":{\"recorded\":%llu,\"dropped\":%llu,"
        "\"capacity\":%llu}",
        (unsigned long long)flight_->recorded(),
        (unsigned long long)flight_->dropped(),
        (unsigned long long)flight_->capacity());
  }
  out += "}";
  return out;
}

uint64_t SortService::EstimateWorkingSetBytes(const OperatorRequest& request,
                                              const Table& left,
                                              const Table* right) {
  // Keys carry one extra word per row (the row id the runs sort by).
  auto keyed_row_bytes = [](const SortSpec& spec, const Table& t) {
    return RowLayout(t.types()).row_width() + spec.KeyWidth() + 8;
  };
  const uint64_t rows = left.row_count();
  switch (request.op) {
    case OperatorKind::kSort:
      // Encoded keys + row payload, doubled for the merge's ping/pong.
      return 2 * rows * keyed_row_bytes(request.spec, left);
    case OperatorKind::kTopN: {
      // Candidate storage is compacted back to O(limit); its high-water is
      // the compaction threshold (top_n.cc), never the input size.
      const uint64_t candidates =
          std::min(rows, 4 * request.limit + 2 * kVectorSize);
      return 2 * candidates * keyed_row_bytes(request.spec, left);
    }
    case OperatorKind::kWindow: {
      std::vector<SortColumn> columns;
      for (uint64_t col : request.window.partition_by) {
        if (col >= left.types().size()) continue;  // rejected at Submit()
        columns.emplace_back(col, left.types()[col]);
      }
      columns.insert(columns.end(), request.window.order_by.begin(),
                     request.window.order_by.end());
      SortSpec full_spec(std::move(columns));
      // Full sort of the input plus the three rank vectors.
      return 2 * rows * keyed_row_bytes(full_spec, left) +
             3 * sizeof(int64_t) * rows;
    }
    case OperatorKind::kMergeJoin:
    case OperatorKind::kIEJoin: {
      // Both inputs sorted (keys are one or two fixed-width columns — call
      // it 16 bytes with the row id) plus the match/rank lists.
      const uint64_t rrows = right != nullptr ? right->row_count() : 0;
      const uint64_t lbytes = rows * (RowLayout(left.types()).row_width() + 16);
      const uint64_t rbytes =
          right != nullptr
              ? rrows * (RowLayout(right->types()).row_width() + 16)
              : 0;
      return 2 * (lbytes + rbytes) + 2 * sizeof(uint64_t) * (rows + rrows);
    }
  }
  return 0;
}

void SortService::PumpAdmissionLocked() {
  while (!queue_.empty()) {
    const bool general_free =
        running_.load(std::memory_order_relaxed) < config_.max_running;
    const bool express_free =
        express_running_.load(std::memory_order_relaxed) <
        config_.express_slots;
    if (!general_free && !express_free) break;
    // Highest priority class first, arrival order within it; waiters whose
    // tenant is at its cap are passed over (a later arrival of another
    // tenant may run ahead of them — that *is* the fairness policy), as are
    // waiters no free lane may seat (only express-eligible requests fit the
    // express lane).
    auto best = queue_.end();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      Waiter* w = *it;
      if (!general_free && !(w->express_eligible && express_free)) continue;
      if (config_.tenant_max_running != 0) {
        auto t = tenant_running_.find(*w->tenant);
        if (t != tenant_running_.end() &&
            t->second >= config_.tenant_max_running) {
          continue;
        }
      }
      if (best == queue_.end() || w->priority < (*best)->priority ||
          (w->priority == (*best)->priority && w->seq < (*best)->seq)) {
        best = it;
      }
    }
    if (best == queue_.end()) break;
    Waiter* w = *best;
    queue_.erase(best);
    queue_depth_.store(queue_.size(), std::memory_order_relaxed);
    w->admitted = true;
    // Express-eligible work prefers the express lane while it has room,
    // preserving general slots for the queries that can only run there.
    w->in_express = w->express_eligible && express_free;
    if (w->in_express) {
      const uint64_t now_express =
          express_running_.fetch_add(1, std::memory_order_relaxed) + 1;
      express_admitted_.fetch_add(1, std::memory_order_relaxed);
      if (now_express > max_express_running_.load(std::memory_order_relaxed)) {
        max_express_running_.store(now_express, std::memory_order_relaxed);
      }
      if (w->telemetry != nullptr) w->telemetry->express_admitted->Increment();
    } else {
      const uint64_t now_running =
          running_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (now_running > max_running_.load(std::memory_order_relaxed)) {
        max_running_.store(now_running, std::memory_order_relaxed);
      }
    }
    ++tenant_running_[*w->tenant];
    admitted_.fetch_add(1, std::memory_order_release);
    op_class_[OpIndex(w->op)].admitted.fetch_add(1,
                                                 std::memory_order_release);
    if (w->telemetry != nullptr) w->telemetry->admitted->Increment();
    w->cv.notify_one();
  }
}

Status SortService::Admit(const OperatorRequest& request,
                          const std::string& tenant, bool express_eligible,
                          const CancellationToken& queue_cancel,
                          const TelemetryHandles* telemetry,
                          uint64_t query_id, uint64_t* waited_ns,
                          bool* in_express) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  auto waited_ms = [&start] {
    return static_cast<unsigned long long>(
        std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                              start)
            .count());
  };
  // Wait-free telemetry; shed paths below add their own cause events.
  auto record_flight = [&](FlightEventKind kind, const char* cause) {
    if (telemetry == nullptr) return;
    flight_->Record(kind, query_id, telemetry->tenant, telemetry->op_class,
                    telemetry->priority, cause, 0);
  };
  std::unique_lock<std::mutex> lock(mutex_);
  requests_.fetch_add(1, std::memory_order_release);
  op_class_[OpIndex(request.op)].requests.fetch_add(
      1, std::memory_order_release);
  if (telemetry != nullptr) telemetry->requests->Increment();
  record_flight(FlightEventKind::kEnqueue, "");
  Waiter waiter;
  waiter.priority = request.priority;
  waiter.seq = next_seq_++;
  waiter.tenant = &tenant;
  waiter.op = request.op;
  waiter.telemetry = telemetry;
  waiter.query_id = query_id;
  waiter.express_eligible = express_eligible;
  queue_.push_back(&waiter);
  queue_depth_.store(queue_.size(), std::memory_order_relaxed);
  PumpAdmissionLocked();
  // Shed-fast policy: a request that cannot run immediately and would be
  // waiter number max_queued+1 is refused outright — a full queue means the
  // wait would be long, and a fast ResourceExhausted beats a slow one.
  if (!waiter.admitted && queue_.size() > config_.max_queued) {
    queue_.pop_back();
    queue_depth_.store(queue_.size(), std::memory_order_relaxed);
    shed_queue_full_.fetch_add(1, std::memory_order_release);
    op_class_[OpIndex(request.op)].shed.fetch_add(1,
                                                  std::memory_order_release);
    if (telemetry != nullptr) telemetry->shed_queue_full->Increment();
    record_flight(FlightEventKind::kShed, "queue_full");
    return Status::ResourceExhausted(StringFormat(
        "admission queue full for tenant '%s' (%llu queued > limit %llu; "
        "%llu running + %llu express; wait budget spent: %llu ms); "
        "shed fast, retry later",
        tenant.c_str(), (unsigned long long)queue_.size() + 1,
        (unsigned long long)config_.max_queued,
        (unsigned long long)running_.load(std::memory_order_relaxed),
        (unsigned long long)express_running_.load(std::memory_order_relaxed),
        waited_ms()));
  }
  if (queue_.size() > max_queue_depth_.load(std::memory_order_relaxed)) {
    max_queue_depth_.store(queue_.size(), std::memory_order_relaxed);
  }

  const bool bounded = config_.queue_wait_limit_ms > 0;
  const Clock::time_point wait_deadline =
      start + std::chrono::milliseconds(config_.queue_wait_limit_ms);
  auto remove_self = [&] {
    queue_.erase(std::find(queue_.begin(), queue_.end(), &waiter));
    queue_depth_.store(queue_.size(), std::memory_order_relaxed);
  };
  while (!waiter.admitted) {
    // One combined poll: the caller's linked token trips on the request
    // deadline, an external cancel, or both — first cause wins and decides
    // DeadlineExceeded vs Cancelled.
    if (queue_cancel.CanBeCancelled() && queue_cancel.IsCancelled()) {
      remove_self();
      shed_queued_cancel_.fetch_add(1, std::memory_order_release);
      op_class_[OpIndex(request.op)].shed.fetch_add(
          1, std::memory_order_release);
      if (telemetry != nullptr) telemetry->shed_queued_cancel->Increment();
      if (queue_cancel.cause() == CancelCause::kDeadline) {
        record_flight(FlightEventKind::kShed, "queued_deadline");
        return Status::DeadlineExceeded(
            "request deadline expired in the admission queue");
      }
      record_flight(FlightEventKind::kShed, "queued_cancel");
      return CancellationToken::StatusForCause(queue_cancel.cause());
    }
    if (bounded && Clock::now() >= wait_deadline) {
      remove_self();
      shed_wait_budget_.fetch_add(1, std::memory_order_release);
      op_class_[OpIndex(request.op)].shed.fetch_add(
          1, std::memory_order_release);
      if (telemetry != nullptr) telemetry->shed_wait_budget->Increment();
      record_flight(FlightEventKind::kShed, "wait_budget");
      return Status::ResourceExhausted(StringFormat(
          "admission wait budget spent for tenant '%s' (waited %llu of "
          "%llu ms; %llu still queued, %llu running + %llu express); the "
          "service is saturated, retry later",
          tenant.c_str(), waited_ms(),
          (unsigned long long)config_.queue_wait_limit_ms,
          (unsigned long long)queue_.size(),
          (unsigned long long)running_.load(std::memory_order_relaxed),
          (unsigned long long)express_running_.load(
              std::memory_order_relaxed)));
    }
    Clock::time_point until =
        Clock::now() + std::chrono::milliseconds(kQueuePollMillis);
    if (bounded) until = std::min(until, wait_deadline);
    if (!request.deadline.IsInfinite()) {
      until = std::min(until, request.deadline.when());
    }
    waiter.cv.wait_until(lock, until);
  }
  *waited_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
  *in_express = waiter.in_express;
  return Status::OK();
}

void SortService::ReleaseSlot(const std::string& tenant, bool in_express) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (in_express) {
    ROWSORT_DASSERT(express_running_.load(std::memory_order_relaxed) > 0);
    express_running_.fetch_sub(1, std::memory_order_relaxed);
  } else {
    ROWSORT_DASSERT(running_.load(std::memory_order_relaxed) > 0);
    running_.fetch_sub(1, std::memory_order_relaxed);
  }
  auto it = tenant_running_.find(tenant);
  ROWSORT_DASSERT(it != tenant_running_.end() && it->second > 0);
  if (--it->second == 0) tenant_running_.erase(it);
  PumpAdmissionLocked();
}

void SortService::RegisterSort(RelationalSort* sort, TaskPriority priority) {
  auto* query = new ActiveQuery;
  query->sort = sort;
  query->priority = priority;
  // Attribute the engine to the service request executing on this thread
  // (engines are constructed on the client thread inside the operator body,
  // including sorts nested in window/join operators).
  if (t_request_context != nullptr) {
    query->query_id = t_request_context->query_id;
    query->tenant = t_request_context->tenant;
    query->op_class = t_request_context->op_class;
    query->priority_name = t_request_context->priority;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  active_.push_back(query);
  active_count_.store(active_.size(), std::memory_order_relaxed);
}

void SortService::UnregisterSort(RelationalSort* sort) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = std::find_if(active_.begin(), active_.end(),
                         [sort](ActiveQuery* q) { return q->sort == sort; });
  if (it == active_.end()) return;
  ActiveQuery* query = *it;
  // The sort is about to die: wait out any in-flight victim spill that holds
  // a pin on it. Re-find after the wait — the vector may have shifted.
  unpinned_.wait(lock, [query] { return query->pins == 0; });
  active_.erase(std::find(active_.begin(), active_.end(), query));
  active_count_.store(active_.size(), std::memory_order_relaxed);
  delete query;
}

void SortService::EnsureCapacity(uint64_t bytes, RelationalSort* requester) {
  if (global_tracker_.limit() == 0) return;
  // Victims that freed nothing (all runs already spilled, or mid-merge) are
  // not asked again this round — the pressure they cannot relieve falls
  // through to the requester's own spilling.
  std::vector<const RelationalSort*> unhelpful;
  for (;;) {
    const uint64_t reserved = global_tracker_.reserved();
    if (reserved + bytes <= global_tracker_.limit()) return;
    const uint64_t need = reserved + bytes - global_tracker_.limit();
    ActiveQuery* victim = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (ActiveQuery* q : active_) {
        if (q->sort == requester) continue;
        if (std::find(unhelpful.begin(), unhelpful.end(), q->sort) !=
            unhelpful.end()) {
          continue;
        }
        if (q->sort->memory_tracker().reserved() == 0) continue;
        // Policy (docs/service.md): lowest priority class first; within a
        // class, the largest resident footprint (fewest victims for the
        // most relief).
        if (victim == nullptr || q->priority > victim->priority ||
            (q->priority == victim->priority &&
             q->sort->memory_tracker().reserved() >
                 victim->sort->memory_tracker().reserved())) {
          victim = q;
        }
      }
      if (victim != nullptr) ++victim->pins;
    }
    if (victim == nullptr) return;  // requester spills its own runs instead
    // Outside the service lock: the victim's spill takes its runs_mutex_
    // and does real I/O. The pin keeps its ActiveQuery (and the sort it
    // points to) alive until we drop it.
    const uint64_t freed = victim->sort->SpillResidentBytes(need);
    // Identity must be captured before the pin drops — UnregisterSort may
    // delete the ActiveQuery the moment pins reaches zero.
    const uint64_t victim_query_id = victim->query_id;
    const char* victim_tenant = victim->tenant;
    const char* victim_op = victim->op_class;
    const char* victim_priority = victim->priority_name;
    const RelationalSort* victim_sort = victim->sort;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--victim->pins == 0) unpinned_.notify_all();
    }
    if (freed > 0) {
      victim_spills_.fetch_add(1, std::memory_order_relaxed);
      victim_bytes_freed_.fetch_add(freed, std::memory_order_relaxed);
      if (metrics_ != nullptr) {
        // Victim spills are rare (each one is real I/O), so resolving the
        // victim-tenant counters through the registry lock is fine here.
        const MetricLabels labels = {{"tenant", victim_tenant}};
        metrics_
            ->GetCounter("rowsort_service_victim_spills_total",
                         "Victim-spill rounds that freed memory, by victim "
                         "tenant",
                         labels)
            ->Increment();
        metrics_
            ->GetCounter("rowsort_service_victim_bytes_freed_total",
                         "Bytes freed from victims, by victim tenant",
                         labels)
            ->Increment(freed);
      }
      if (flight_ != nullptr) {
        flight_->Record(FlightEventKind::kVictimSpill, victim_query_id,
                        victim_tenant, victim_op, victim_priority,
                        "memory_pressure", freed);
      }
    } else {
      unhelpful.push_back(victim_sort);
    }
  }
}

void SortService::RecordSpillCompression(const std::string& tenant,
                                         const SortMetrics& metrics) {
  if (metrics_ == nullptr || metrics.spill_bytes_raw == 0) return;
  const MetricLabels labels = {{"tenant", tenant}};
  metrics_
      ->GetCounter("rowsort_spill_bytes_raw_total",
                   "Spill section bytes before compression, by tenant",
                   labels)
      ->Increment(metrics.spill_bytes_raw);
  metrics_
      ->GetCounter("rowsort_spill_bytes_compressed_total",
                   "Spill section bytes written after compression, by tenant",
                   labels)
      ->Increment(metrics.spill_bytes_compressed);
}

StatusOr<Table> SortService::RunGoverned(
    const OperatorRequest& request, bool express_eligible,
    uint64_t estimated_bytes,
    const std::function<StatusOr<Table>(const SortEngineConfig&,
                                        const CancellationToken&)>& body) {
  const std::string& tenant = EffectiveTenant(request.tenant);
  const TelemetryHandles* telemetry =
      ResolveTelemetry(tenant, request.op, request.priority);
  // One process-unique id serves as flight-recorder query id *and* trace
  // scope: every span this request records — service phases here, engine
  // spans in the body, pool tasks and spill I/O via scope inheritance —
  // lands in the same "query-<id>" process group of the merged export.
  const uint64_t query_id = Tracer::NextScopeId();
  TraceScopeGuard scope(query_id);
  Tracer* tracer = config_.trace;

  // One engine-facing token carries every interruption channel: the linked
  // source trips on the request deadline by itself and observes the
  // caller's external token on every poll (first cause wins) — the same
  // token is polled while queued and handed to the engine once running.
  CancellationSource source(request.deadline, request.cancellation);
  const CancellationToken token = source.token();

  const int64_t enqueue_ns = Tracer::NowNanos();
  uint64_t waited_ns = 0;
  bool in_express = false;
  {
    TraceSpan queued_span(tracer, "service.queued", "service");
    ROWSORT_RETURN_NOT_OK(Admit(request, tenant, express_eligible, token,
                                telemetry, query_id, &waited_ns,
                                &in_express));
  }
  queue_wait_ns_.Record(waited_ns);
  if (telemetry != nullptr) {
    telemetry->queue_wait->RecordNs(waited_ns);
    flight_->Record(FlightEventKind::kAdmit, query_id, telemetry->tenant,
                    telemetry->op_class, telemetry->priority,
                    in_express ? "express" : "general", estimated_bytes);
  }
  struct SlotGuard {
    SortService* service;
    const std::string* tenant;
    bool in_express;
    ~SlotGuard() { service->ReleaseSlot(*tenant, in_express); }
  } slot_guard{this, &tenant, in_express};

  SortEngineConfig config = request.engine;
  config.parent_tracker = &global_tracker_;
  config.governor = this;
  config.governor_priority = request.priority;
  config.cancellation = token;
  config.trace_scope = query_id;
  if (tracer != nullptr) config.trace = tracer;

  // Engines constructed inside the body (on this thread) attribute
  // themselves to this request via the thread-local context.
  RequestContext context;
  context.query_id = query_id;
  context.tenant = telemetry != nullptr ? telemetry->tenant : "";
  context.op_class = OperatorKindName(request.op);
  context.priority = TaskPriorityName(request.priority);
  const RequestContext* previous_context = t_request_context;
  t_request_context = &context;

  const int64_t run_start_ns = Tracer::NowNanos();
  StatusOr<Table> result = [&]() -> StatusOr<Table> {
    TraceSpan run_span(tracer, "service.run", "service");
    try {
      return body(config, token);
    } catch (const CancelledError& e) {
      return e.ToStatus();
    } catch (const std::bad_alloc&) {
      return Status::OutOfMemory(StringFormat(
          "service %s: allocation failed", OperatorKindName(request.op)));
    }
  }();
  t_request_context = previous_context;
  const int64_t end_ns = Tracer::NowNanos();

  {
    TraceSpan finalize_span(tracer, "service.finalize", "service");
    AtomicOpClassStats& op_stats = op_class_[OpIndex(request.op)];
    FlightEventKind outcome = FlightEventKind::kComplete;
    const char* cause = "";
    if (result.ok()) {
      completed_.fetch_add(1, std::memory_order_release);
      op_stats.completed.fetch_add(1, std::memory_order_release);
      if (telemetry != nullptr) telemetry->completed->Increment();
    } else if (result.status().IsCancellation()) {
      cancelled_.fetch_add(1, std::memory_order_release);
      op_stats.cancelled.fetch_add(1, std::memory_order_release);
      if (telemetry != nullptr) telemetry->cancelled->Increment();
      outcome = result.status().code() == StatusCode::kDeadlineExceeded
                    ? FlightEventKind::kDeadline
                    : FlightEventKind::kCancel;
    } else {
      failed_.fetch_add(1, std::memory_order_release);
      op_stats.failed.fetch_add(1, std::memory_order_release);
      if (telemetry != nullptr) telemetry->failed->Increment();
      outcome = FlightEventKind::kFail;
      cause = "error";
    }
    if (telemetry != nullptr) {
      telemetry->run_time->RecordNs(
          static_cast<uint64_t>(end_ns - run_start_ns));
      telemetry->end_to_end->RecordNs(
          static_cast<uint64_t>(end_ns - enqueue_ns));
      flight_->Record(outcome, query_id, telemetry->tenant,
                      telemetry->op_class, telemetry->priority, cause,
                      estimated_bytes);
    }
  }
  return result;
}

StatusOr<Table> SortService::Sort(const Table& input, const SortSpec& spec,
                                  const SortRequest& request,
                                  SortMetrics* metrics_out) {
  OperatorRequest op;
  op.op = OperatorKind::kSort;
  op.tenant = request.tenant;
  op.priority = request.priority;
  op.deadline = request.deadline;
  op.cancellation = request.cancellation;
  op.engine = request.engine;
  op.spec = spec;
  return Submit(input, op, metrics_out);
}

StatusOr<Table> SortService::Submit(const Table& input,
                                    const OperatorRequest& request,
                                    SortMetrics* metrics_out) {
  if (metrics_out != nullptr) metrics_out->Reset();
  // Validation precedes admission and has no stats impact: a malformed
  // request is the caller's bug, not load.
  switch (request.op) {
    case OperatorKind::kMergeJoin:
    case OperatorKind::kIEJoin:
      return Status::InvalidArgument(StringFormat(
          "%s takes two inputs; use the binary Submit overload",
          OperatorKindName(request.op)));
    case OperatorKind::kSort:
      if (request.spec.columns().empty()) {
        return Status::InvalidArgument("sort request has an empty SortSpec");
      }
      break;
    case OperatorKind::kTopN:
      if (request.spec.columns().empty()) {
        return Status::InvalidArgument("top-n request has an empty SortSpec");
      }
      if (request.limit == 0) {
        return Status::InvalidArgument("top-n request has limit == 0");
      }
      break;
    case OperatorKind::kWindow:
      if (request.functions.empty()) {
        return Status::InvalidArgument("window request has no functions");
      }
      if (request.window.partition_by.empty() &&
          request.window.order_by.empty()) {
        return Status::InvalidArgument(
            "window request has neither PARTITION BY nor ORDER BY");
      }
      for (uint64_t col : request.window.partition_by) {
        if (col >= input.types().size()) {
          return Status::InvalidArgument(
              "window partition column out of range");
        }
      }
      break;
  }
  const uint64_t estimated_bytes =
      EstimateWorkingSetBytes(request, input, nullptr);
  const bool express_eligible = config_.express_slots > 0 &&
                                estimated_bytes <= config_.express_max_bytes;

  if (request.op == OperatorKind::kSort) {
    // Full sorts are the one operator whose sink is morsel-parallel over the
    // shared pool (at the request's priority class); everything else runs on
    // the calling thread — express work must not queue behind giant tasks.
    auto body = [&](const SortEngineConfig& config,
                    const CancellationToken& token) -> StatusOr<Table> {
      RelationalSort sort(request.spec, input.types(), config);
      const uint64_t sink_tasks =
          std::max<uint64_t>(config_.threads_per_query, 1);
      std::atomic<uint64_t> next_chunk{0};
      std::vector<std::function<void()>> tasks;
      tasks.reserve(sink_tasks);
      for (uint64_t t = 0; t < sink_tasks; ++t) {
        tasks.push_back([&sort, &input, &next_chunk] {
          auto local = sort.MakeLocalState();
          while (true) {
            uint64_t c = next_chunk.fetch_add(1);
            if (c >= input.ChunkCount()) break;
            if (!sort.Sink(*local, input.chunk(c)).ok()) break;
          }
          (void)sort.CombineLocal(*local);  // status is recorded in the sort
        });
      }
      Status st;
      try {
        pool_.RunBatch(std::move(tasks), token, request.priority);
      } catch (const CancelledError& e) {
        st = e.ToStatus();
      } catch (const std::bad_alloc&) {
        st = Status::OutOfMemory("service sort sink: allocation failed");
      }
      if (st.ok()) st = sort.status();
      if (st.ok()) st = sort.Finalize(&pool_);
      // Spill byte counters go to the registry on every exit: a failed or
      // cancelled sort may still have spilled (and compressed) runs.
      auto export_metrics = [&] {
        if (metrics_out != nullptr) *metrics_out = sort.metrics();
        RecordSpillCompression(EffectiveTenant(request.tenant),
                               sort.metrics());
      };
      if (!st.ok()) {
        export_metrics();
        return st;
      }
      try {
        Table output(input.types(), input.names());
        uint64_t offset = 0;
        while (offset < sort.row_count()) {
          DataChunk chunk = output.NewChunk();
          offset += sort.ScanChunk(offset, &chunk);
          output.Append(std::move(chunk));
        }
        export_metrics();
        return output;
      } catch (const std::bad_alloc&) {
        export_metrics();
        return Status::OutOfMemory("service sort output: allocation failed");
      }
    };
    return RunGoverned(request, express_eligible, estimated_bytes, body);
  }

  auto body = [&](const SortEngineConfig& config,
                  const CancellationToken&) -> StatusOr<Table> {
    switch (request.op) {
      case OperatorKind::kTopN: {
        TopN top_n(request.spec, input.types(), request.limit, config);
        for (uint64_t c = 0; c < input.ChunkCount(); ++c) {
          ROWSORT_RETURN_NOT_OK(top_n.Sink(input.chunk(c)));
        }
        return top_n.Finalize();
      }
      case OperatorKind::kWindow:
        return ComputeWindow(input, request.window, request.functions,
                             config);
      default:
        return Status::InvalidArgument("unreachable operator kind");
    }
  };
  return RunGoverned(request, express_eligible, estimated_bytes, body);
}

StatusOr<Table> SortService::Submit(const Table& left, const Table& right,
                                    const OperatorRequest& request,
                                    SortMetrics* metrics_out) {
  if (metrics_out != nullptr) metrics_out->Reset();
  switch (request.op) {
    case OperatorKind::kSort:
    case OperatorKind::kTopN:
    case OperatorKind::kWindow:
      return Status::InvalidArgument(StringFormat(
          "%s takes one input; use the binary Submit overload",
          OperatorKindName(request.op)));
    case OperatorKind::kMergeJoin:
      if (request.keys.empty()) {
        return Status::InvalidArgument("merge-join request has no join keys");
      }
      for (const JoinKey& key : request.keys) {
        if (key.left_column >= left.types().size() ||
            key.right_column >= right.types().size()) {
          return Status::InvalidArgument("merge-join key column out of range");
        }
      }
      break;
    case OperatorKind::kIEJoin:
      if (request.pred1.left_column >= left.types().size() ||
          request.pred2.left_column >= left.types().size() ||
          request.pred1.right_column >= right.types().size() ||
          request.pred2.right_column >= right.types().size()) {
        return Status::InvalidArgument("ie-join column out of range");
      }
      break;
  }
  const uint64_t estimated_bytes =
      EstimateWorkingSetBytes(request, left, &right);
  const bool express_eligible = config_.express_slots > 0 &&
                                estimated_bytes <= config_.express_max_bytes;

  auto body = [&](const SortEngineConfig& config,
                  const CancellationToken&) -> StatusOr<Table> {
    if (request.op == OperatorKind::kMergeJoin) {
      return SortMergeJoin(left, right, request.keys, config);
    }
    return IEJoin(left, right, request.pred1, request.pred2, config);
  };
  return RunGoverned(request, express_eligible, estimated_bytes, body);
}

}  // namespace rowsort
