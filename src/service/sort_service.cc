// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "service/sort_service.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "common/string_util.h"
#include "engine/top_n.h"
#include "row/row_layout.h"

namespace rowsort {

namespace {

/// Queued waiters poll their shed conditions (deadline, external cancel) at
/// this granularity — their cv is only notified on admission.
constexpr int64_t kQueuePollMillis = 20;

const std::string& EffectiveTenant(const std::string& tenant) {
  static const std::string kDefault = "default";
  return tenant.empty() ? kDefault : tenant;
}

uint64_t OpIndex(OperatorKind op) { return static_cast<uint64_t>(op); }

}  // namespace

const char* OperatorKindName(OperatorKind op) {
  switch (op) {
    case OperatorKind::kSort:
      return "sort";
    case OperatorKind::kTopN:
      return "top_n";
    case OperatorKind::kWindow:
      return "window";
    case OperatorKind::kMergeJoin:
      return "merge_join";
    case OperatorKind::kIEJoin:
      return "ie_join";
  }
  return "unknown";
}

SortService::SortService(SortServiceConfig config)
    : config_(std::move(config)),
      global_tracker_(config_.memory_limit_bytes),
      pool_(config_.threads) {
  if (config_.pool_stats) pool_.EnableStats(true);
}

SortService::~SortService() = default;

SortServiceStats SortService::StatsSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SortServiceStats out = stats_;
  out.queue_wait_ns = queue_wait_ns_.Snapshot();
  return out;
}

uint64_t SortService::current_queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

uint64_t SortService::current_running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

uint64_t SortService::current_express_running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return express_running_;
}

uint64_t SortService::EstimateWorkingSetBytes(const OperatorRequest& request,
                                              const Table& left,
                                              const Table* right) {
  // Keys carry one extra word per row (the row id the runs sort by).
  auto keyed_row_bytes = [](const SortSpec& spec, const Table& t) {
    return RowLayout(t.types()).row_width() + spec.KeyWidth() + 8;
  };
  const uint64_t rows = left.row_count();
  switch (request.op) {
    case OperatorKind::kSort:
      // Encoded keys + row payload, doubled for the merge's ping/pong.
      return 2 * rows * keyed_row_bytes(request.spec, left);
    case OperatorKind::kTopN: {
      // Candidate storage is compacted back to O(limit); its high-water is
      // the compaction threshold (top_n.cc), never the input size.
      const uint64_t candidates =
          std::min(rows, 4 * request.limit + 2 * kVectorSize);
      return 2 * candidates * keyed_row_bytes(request.spec, left);
    }
    case OperatorKind::kWindow: {
      std::vector<SortColumn> columns;
      for (uint64_t col : request.window.partition_by) {
        if (col >= left.types().size()) continue;  // rejected at Submit()
        columns.emplace_back(col, left.types()[col]);
      }
      columns.insert(columns.end(), request.window.order_by.begin(),
                     request.window.order_by.end());
      SortSpec full_spec(std::move(columns));
      // Full sort of the input plus the three rank vectors.
      return 2 * rows * keyed_row_bytes(full_spec, left) +
             3 * sizeof(int64_t) * rows;
    }
    case OperatorKind::kMergeJoin:
    case OperatorKind::kIEJoin: {
      // Both inputs sorted (keys are one or two fixed-width columns — call
      // it 16 bytes with the row id) plus the match/rank lists.
      const uint64_t rrows = right != nullptr ? right->row_count() : 0;
      const uint64_t lbytes = rows * (RowLayout(left.types()).row_width() + 16);
      const uint64_t rbytes =
          right != nullptr
              ? rrows * (RowLayout(right->types()).row_width() + 16)
              : 0;
      return 2 * (lbytes + rbytes) + 2 * sizeof(uint64_t) * (rows + rrows);
    }
  }
  return 0;
}

void SortService::PumpAdmissionLocked() {
  while (!queue_.empty()) {
    const bool general_free = running_ < config_.max_running;
    const bool express_free = express_running_ < config_.express_slots;
    if (!general_free && !express_free) break;
    // Highest priority class first, arrival order within it; waiters whose
    // tenant is at its cap are passed over (a later arrival of another
    // tenant may run ahead of them — that *is* the fairness policy), as are
    // waiters no free lane may seat (only express-eligible requests fit the
    // express lane).
    auto best = queue_.end();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      Waiter* w = *it;
      if (!general_free && !(w->express_eligible && express_free)) continue;
      if (config_.tenant_max_running != 0) {
        auto t = tenant_running_.find(*w->tenant);
        if (t != tenant_running_.end() &&
            t->second >= config_.tenant_max_running) {
          continue;
        }
      }
      if (best == queue_.end() || w->priority < (*best)->priority ||
          (w->priority == (*best)->priority && w->seq < (*best)->seq)) {
        best = it;
      }
    }
    if (best == queue_.end()) break;
    Waiter* w = *best;
    queue_.erase(best);
    w->admitted = true;
    // Express-eligible work prefers the express lane while it has room,
    // preserving general slots for the queries that can only run there.
    w->in_express = w->express_eligible && express_free;
    if (w->in_express) {
      ++express_running_;
      stats_.express_admitted += 1;
      stats_.max_express_running =
          std::max(stats_.max_express_running, express_running_);
    } else {
      ++running_;
      stats_.max_running = std::max(stats_.max_running, running_);
    }
    ++tenant_running_[*w->tenant];
    stats_.admitted += 1;
    stats_.op_class[OpIndex(w->op)].admitted += 1;
    w->cv.notify_one();
  }
}

Status SortService::Admit(const OperatorRequest& request,
                          const std::string& tenant, bool express_eligible,
                          const CancellationToken& queue_cancel,
                          uint64_t* waited_ns, bool* in_express) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  auto waited_ms = [&start] {
    return static_cast<unsigned long long>(
        std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                              start)
            .count());
  };
  std::unique_lock<std::mutex> lock(mutex_);
  stats_.requests += 1;
  stats_.op_class[OpIndex(request.op)].requests += 1;
  Waiter waiter;
  waiter.priority = request.priority;
  waiter.seq = next_seq_++;
  waiter.tenant = &tenant;
  waiter.op = request.op;
  waiter.express_eligible = express_eligible;
  queue_.push_back(&waiter);
  PumpAdmissionLocked();
  // Shed-fast policy: a request that cannot run immediately and would be
  // waiter number max_queued+1 is refused outright — a full queue means the
  // wait would be long, and a fast ResourceExhausted beats a slow one.
  if (!waiter.admitted && queue_.size() > config_.max_queued) {
    queue_.pop_back();
    stats_.shed_queue_full += 1;
    stats_.op_class[OpIndex(request.op)].shed += 1;
    return Status::ResourceExhausted(StringFormat(
        "admission queue full for tenant '%s' (%llu queued > limit %llu; "
        "%llu running + %llu express; wait budget spent: %llu ms); "
        "shed fast, retry later",
        tenant.c_str(), (unsigned long long)queue_.size() + 1,
        (unsigned long long)config_.max_queued, (unsigned long long)running_,
        (unsigned long long)express_running_, waited_ms()));
  }
  stats_.max_queue_depth =
      std::max<uint64_t>(stats_.max_queue_depth, queue_.size());

  const bool bounded = config_.queue_wait_limit_ms > 0;
  const Clock::time_point wait_deadline =
      start + std::chrono::milliseconds(config_.queue_wait_limit_ms);
  auto remove_self = [&] {
    queue_.erase(std::find(queue_.begin(), queue_.end(), &waiter));
  };
  while (!waiter.admitted) {
    // One combined poll: the caller's linked token trips on the request
    // deadline, an external cancel, or both — first cause wins and decides
    // DeadlineExceeded vs Cancelled.
    if (queue_cancel.CanBeCancelled() && queue_cancel.IsCancelled()) {
      remove_self();
      stats_.shed_queued_cancel += 1;
      stats_.op_class[OpIndex(request.op)].shed += 1;
      if (queue_cancel.cause() == CancelCause::kDeadline) {
        return Status::DeadlineExceeded(
            "request deadline expired in the admission queue");
      }
      return CancellationToken::StatusForCause(queue_cancel.cause());
    }
    if (bounded && Clock::now() >= wait_deadline) {
      remove_self();
      stats_.shed_wait_budget += 1;
      stats_.op_class[OpIndex(request.op)].shed += 1;
      return Status::ResourceExhausted(StringFormat(
          "admission wait budget spent for tenant '%s' (waited %llu of "
          "%llu ms; %llu still queued, %llu running + %llu express); the "
          "service is saturated, retry later",
          tenant.c_str(), waited_ms(),
          (unsigned long long)config_.queue_wait_limit_ms,
          (unsigned long long)queue_.size(), (unsigned long long)running_,
          (unsigned long long)express_running_));
    }
    Clock::time_point until =
        Clock::now() + std::chrono::milliseconds(kQueuePollMillis);
    if (bounded) until = std::min(until, wait_deadline);
    if (!request.deadline.IsInfinite()) {
      until = std::min(until, request.deadline.when());
    }
    waiter.cv.wait_until(lock, until);
  }
  *waited_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
  *in_express = waiter.in_express;
  return Status::OK();
}

void SortService::ReleaseSlot(const std::string& tenant, bool in_express) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (in_express) {
    ROWSORT_DASSERT(express_running_ > 0);
    --express_running_;
  } else {
    ROWSORT_DASSERT(running_ > 0);
    --running_;
  }
  auto it = tenant_running_.find(tenant);
  ROWSORT_DASSERT(it != tenant_running_.end() && it->second > 0);
  if (--it->second == 0) tenant_running_.erase(it);
  PumpAdmissionLocked();
}

void SortService::RegisterSort(RelationalSort* sort, TaskPriority priority) {
  auto* query = new ActiveQuery;
  query->sort = sort;
  query->priority = priority;
  std::lock_guard<std::mutex> lock(mutex_);
  active_.push_back(query);
}

void SortService::UnregisterSort(RelationalSort* sort) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = std::find_if(active_.begin(), active_.end(),
                         [sort](ActiveQuery* q) { return q->sort == sort; });
  if (it == active_.end()) return;
  ActiveQuery* query = *it;
  // The sort is about to die: wait out any in-flight victim spill that holds
  // a pin on it. Re-find after the wait — the vector may have shifted.
  unpinned_.wait(lock, [query] { return query->pins == 0; });
  active_.erase(std::find(active_.begin(), active_.end(), query));
  delete query;
}

void SortService::EnsureCapacity(uint64_t bytes, RelationalSort* requester) {
  if (global_tracker_.limit() == 0) return;
  // Victims that freed nothing (all runs already spilled, or mid-merge) are
  // not asked again this round — the pressure they cannot relieve falls
  // through to the requester's own spilling.
  std::vector<const RelationalSort*> unhelpful;
  for (;;) {
    const uint64_t reserved = global_tracker_.reserved();
    if (reserved + bytes <= global_tracker_.limit()) return;
    const uint64_t need = reserved + bytes - global_tracker_.limit();
    ActiveQuery* victim = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (ActiveQuery* q : active_) {
        if (q->sort == requester) continue;
        if (std::find(unhelpful.begin(), unhelpful.end(), q->sort) !=
            unhelpful.end()) {
          continue;
        }
        if (q->sort->memory_tracker().reserved() == 0) continue;
        // Policy (docs/service.md): lowest priority class first; within a
        // class, the largest resident footprint (fewest victims for the
        // most relief).
        if (victim == nullptr || q->priority > victim->priority ||
            (q->priority == victim->priority &&
             q->sort->memory_tracker().reserved() >
                 victim->sort->memory_tracker().reserved())) {
          victim = q;
        }
      }
      if (victim != nullptr) ++victim->pins;
    }
    if (victim == nullptr) return;  // requester spills its own runs instead
    // Outside the service lock: the victim's spill takes its runs_mutex_
    // and does real I/O. The pin keeps its ActiveQuery (and the sort it
    // points to) alive until we drop it.
    const uint64_t freed = victim->sort->SpillResidentBytes(need);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--victim->pins == 0) unpinned_.notify_all();
      if (freed > 0) {
        stats_.victim_spills += 1;
        stats_.victim_bytes_freed += freed;
      }
    }
    if (freed == 0) unhelpful.push_back(victim->sort);
  }
}

StatusOr<Table> SortService::RunGoverned(
    const OperatorRequest& request, bool express_eligible,
    const std::function<StatusOr<Table>(const SortEngineConfig&,
                                        const CancellationToken&)>& body) {
  const std::string& tenant = EffectiveTenant(request.tenant);

  // One engine-facing token carries every interruption channel: the linked
  // source trips on the request deadline by itself and observes the
  // caller's external token on every poll (first cause wins) — the same
  // token is polled while queued and handed to the engine once running.
  CancellationSource source(request.deadline, request.cancellation);
  const CancellationToken token = source.token();

  uint64_t waited_ns = 0;
  bool in_express = false;
  ROWSORT_RETURN_NOT_OK(
      Admit(request, tenant, express_eligible, token, &waited_ns, &in_express));
  queue_wait_ns_.Record(waited_ns);
  struct SlotGuard {
    SortService* service;
    const std::string* tenant;
    bool in_express;
    ~SlotGuard() { service->ReleaseSlot(*tenant, in_express); }
  } slot_guard{this, &tenant, in_express};

  SortEngineConfig config = request.engine;
  config.parent_tracker = &global_tracker_;
  config.governor = this;
  config.governor_priority = request.priority;
  config.cancellation = token;

  StatusOr<Table> result = [&]() -> StatusOr<Table> {
    try {
      return body(config, token);
    } catch (const CancelledError& e) {
      return e.ToStatus();
    } catch (const std::bad_alloc&) {
      return Status::OutOfMemory(StringFormat(
          "service %s: allocation failed", OperatorKindName(request.op)));
    }
  }();

  {
    std::lock_guard<std::mutex> lock(mutex_);
    OperatorClassStats& op_stats = stats_.op_class[OpIndex(request.op)];
    if (result.ok()) {
      stats_.completed += 1;
      op_stats.completed += 1;
    } else if (result.status().IsCancellation()) {
      stats_.cancelled += 1;
      op_stats.cancelled += 1;
    } else {
      stats_.failed += 1;
      op_stats.failed += 1;
    }
  }
  return result;
}

StatusOr<Table> SortService::Sort(const Table& input, const SortSpec& spec,
                                  const SortRequest& request,
                                  SortMetrics* metrics_out) {
  OperatorRequest op;
  op.op = OperatorKind::kSort;
  op.tenant = request.tenant;
  op.priority = request.priority;
  op.deadline = request.deadline;
  op.cancellation = request.cancellation;
  op.engine = request.engine;
  op.spec = spec;
  return Submit(input, op, metrics_out);
}

StatusOr<Table> SortService::Submit(const Table& input,
                                    const OperatorRequest& request,
                                    SortMetrics* metrics_out) {
  if (metrics_out != nullptr) metrics_out->Reset();
  // Validation precedes admission and has no stats impact: a malformed
  // request is the caller's bug, not load.
  switch (request.op) {
    case OperatorKind::kMergeJoin:
    case OperatorKind::kIEJoin:
      return Status::InvalidArgument(StringFormat(
          "%s takes two inputs; use the binary Submit overload",
          OperatorKindName(request.op)));
    case OperatorKind::kSort:
      if (request.spec.columns().empty()) {
        return Status::InvalidArgument("sort request has an empty SortSpec");
      }
      break;
    case OperatorKind::kTopN:
      if (request.spec.columns().empty()) {
        return Status::InvalidArgument("top-n request has an empty SortSpec");
      }
      if (request.limit == 0) {
        return Status::InvalidArgument("top-n request has limit == 0");
      }
      break;
    case OperatorKind::kWindow:
      if (request.functions.empty()) {
        return Status::InvalidArgument("window request has no functions");
      }
      if (request.window.partition_by.empty() &&
          request.window.order_by.empty()) {
        return Status::InvalidArgument(
            "window request has neither PARTITION BY nor ORDER BY");
      }
      for (uint64_t col : request.window.partition_by) {
        if (col >= input.types().size()) {
          return Status::InvalidArgument(
              "window partition column out of range");
        }
      }
      break;
  }
  const bool express_eligible =
      config_.express_slots > 0 &&
      EstimateWorkingSetBytes(request, input, nullptr) <=
          config_.express_max_bytes;

  if (request.op == OperatorKind::kSort) {
    // Full sorts are the one operator whose sink is morsel-parallel over the
    // shared pool (at the request's priority class); everything else runs on
    // the calling thread — express work must not queue behind giant tasks.
    auto body = [&](const SortEngineConfig& config,
                    const CancellationToken& token) -> StatusOr<Table> {
      RelationalSort sort(request.spec, input.types(), config);
      const uint64_t sink_tasks =
          std::max<uint64_t>(config_.threads_per_query, 1);
      std::atomic<uint64_t> next_chunk{0};
      std::vector<std::function<void()>> tasks;
      tasks.reserve(sink_tasks);
      for (uint64_t t = 0; t < sink_tasks; ++t) {
        tasks.push_back([&sort, &input, &next_chunk] {
          auto local = sort.MakeLocalState();
          while (true) {
            uint64_t c = next_chunk.fetch_add(1);
            if (c >= input.ChunkCount()) break;
            if (!sort.Sink(*local, input.chunk(c)).ok()) break;
          }
          (void)sort.CombineLocal(*local);  // status is recorded in the sort
        });
      }
      Status st;
      try {
        pool_.RunBatch(std::move(tasks), token, request.priority);
      } catch (const CancelledError& e) {
        st = e.ToStatus();
      } catch (const std::bad_alloc&) {
        st = Status::OutOfMemory("service sort sink: allocation failed");
      }
      if (st.ok()) st = sort.status();
      if (st.ok()) st = sort.Finalize(&pool_);
      if (!st.ok()) {
        if (metrics_out != nullptr) *metrics_out = sort.metrics();
        return st;
      }
      try {
        Table output(input.types(), input.names());
        uint64_t offset = 0;
        while (offset < sort.row_count()) {
          DataChunk chunk = output.NewChunk();
          offset += sort.ScanChunk(offset, &chunk);
          output.Append(std::move(chunk));
        }
        if (metrics_out != nullptr) *metrics_out = sort.metrics();
        return output;
      } catch (const std::bad_alloc&) {
        if (metrics_out != nullptr) *metrics_out = sort.metrics();
        return Status::OutOfMemory("service sort output: allocation failed");
      }
    };
    return RunGoverned(request, express_eligible, body);
  }

  auto body = [&](const SortEngineConfig& config,
                  const CancellationToken&) -> StatusOr<Table> {
    switch (request.op) {
      case OperatorKind::kTopN: {
        TopN top_n(request.spec, input.types(), request.limit, config);
        for (uint64_t c = 0; c < input.ChunkCount(); ++c) {
          ROWSORT_RETURN_NOT_OK(top_n.Sink(input.chunk(c)));
        }
        return top_n.Finalize();
      }
      case OperatorKind::kWindow:
        return ComputeWindow(input, request.window, request.functions,
                             config);
      default:
        return Status::InvalidArgument("unreachable operator kind");
    }
  };
  return RunGoverned(request, express_eligible, body);
}

StatusOr<Table> SortService::Submit(const Table& left, const Table& right,
                                    const OperatorRequest& request,
                                    SortMetrics* metrics_out) {
  if (metrics_out != nullptr) metrics_out->Reset();
  switch (request.op) {
    case OperatorKind::kSort:
    case OperatorKind::kTopN:
    case OperatorKind::kWindow:
      return Status::InvalidArgument(StringFormat(
          "%s takes one input; use the unary Submit overload",
          OperatorKindName(request.op)));
    case OperatorKind::kMergeJoin:
      if (request.keys.empty()) {
        return Status::InvalidArgument("merge-join request has no join keys");
      }
      for (const JoinKey& key : request.keys) {
        if (key.left_column >= left.types().size() ||
            key.right_column >= right.types().size()) {
          return Status::InvalidArgument("merge-join key column out of range");
        }
      }
      break;
    case OperatorKind::kIEJoin:
      if (request.pred1.left_column >= left.types().size() ||
          request.pred2.left_column >= left.types().size() ||
          request.pred1.right_column >= right.types().size() ||
          request.pred2.right_column >= right.types().size()) {
        return Status::InvalidArgument("ie-join column out of range");
      }
      break;
  }
  const bool express_eligible =
      config_.express_slots > 0 &&
      EstimateWorkingSetBytes(request, left, &right) <=
          config_.express_max_bytes;

  auto body = [&](const SortEngineConfig& config,
                  const CancellationToken&) -> StatusOr<Table> {
    if (request.op == OperatorKind::kMergeJoin) {
      return SortMergeJoin(left, right, request.keys, config);
    }
    return IEJoin(left, right, request.pred1, request.pred2, config);
  };
  return RunGoverned(request, express_eligible, body);
}

}  // namespace rowsort
