// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "service/sort_service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>

#include "common/string_util.h"

namespace rowsort {

namespace {

/// Queued waiters poll their shed conditions (deadline, external cancel) at
/// this granularity — their cv is only notified on admission.
constexpr int64_t kQueuePollMillis = 20;

const std::string& EffectiveTenant(const SortRequest& request) {
  static const std::string kDefault = "default";
  return request.tenant.empty() ? kDefault : request.tenant;
}

}  // namespace

SortService::SortService(SortServiceConfig config)
    : config_(std::move(config)),
      global_tracker_(config_.memory_limit_bytes),
      pool_(config_.threads) {
  if (config_.pool_stats) pool_.EnableStats(true);
}

SortService::~SortService() = default;

SortServiceStats SortService::StatsSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SortServiceStats out = stats_;
  out.queue_wait_ns = queue_wait_ns_.Snapshot();
  return out;
}

uint64_t SortService::current_queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

uint64_t SortService::current_running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

void SortService::PumpAdmissionLocked() {
  while (running_ < config_.max_running && !queue_.empty()) {
    // Highest priority class first, arrival order within it; waiters whose
    // tenant is at its cap are passed over (a later arrival of another
    // tenant may run ahead of them — that *is* the fairness policy).
    auto best = queue_.end();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      Waiter* w = *it;
      if (config_.tenant_max_running != 0) {
        auto t = tenant_running_.find(*w->tenant);
        if (t != tenant_running_.end() &&
            t->second >= config_.tenant_max_running) {
          continue;
        }
      }
      if (best == queue_.end() || w->priority < (*best)->priority ||
          (w->priority == (*best)->priority && w->seq < (*best)->seq)) {
        best = it;
      }
    }
    if (best == queue_.end()) break;
    Waiter* w = *best;
    queue_.erase(best);
    w->admitted = true;
    ++running_;
    ++tenant_running_[*w->tenant];
    stats_.admitted += 1;
    stats_.max_running = std::max(stats_.max_running, running_);
    w->cv.notify_one();
  }
}

Status SortService::Admit(const SortRequest& request,
                          const std::string& tenant,
                          const CancellationToken& queue_cancel,
                          uint64_t* waited_ns) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  std::unique_lock<std::mutex> lock(mutex_);
  stats_.requests += 1;
  Waiter waiter;
  waiter.priority = request.priority;
  waiter.seq = next_seq_++;
  waiter.tenant = &tenant;
  queue_.push_back(&waiter);
  PumpAdmissionLocked();
  // Shed-fast policy: a request that cannot run immediately and would be
  // waiter number max_queued+1 is refused outright — a full queue means the
  // wait would be long, and a fast ResourceExhausted beats a slow one.
  if (!waiter.admitted && queue_.size() > config_.max_queued) {
    queue_.pop_back();
    stats_.shed_queue_full += 1;
    return Status::ResourceExhausted(StringFormat(
        "admission queue full (%llu queued, %llu running); retry later",
        (unsigned long long)queue_.size(), (unsigned long long)running_));
  }
  stats_.max_queue_depth = std::max<uint64_t>(stats_.max_queue_depth,
                                              queue_.size());

  const bool bounded = config_.queue_wait_limit_ms > 0;
  const Clock::time_point wait_deadline =
      start + std::chrono::milliseconds(config_.queue_wait_limit_ms);
  auto remove_self = [&] {
    queue_.erase(std::find(queue_.begin(), queue_.end(), &waiter));
  };
  while (!waiter.admitted) {
    if (request.deadline.Expired()) {
      remove_self();
      stats_.shed_queued_cancel += 1;
      return Status::DeadlineExceeded(
          "request deadline expired in the admission queue");
    }
    if (queue_cancel.CanBeCancelled() && queue_cancel.IsCancelled()) {
      remove_self();
      stats_.shed_queued_cancel += 1;
      return CancellationToken::StatusForCause(queue_cancel.cause());
    }
    if (bounded && Clock::now() >= wait_deadline) {
      remove_self();
      stats_.shed_wait_budget += 1;
      return Status::ResourceExhausted(StringFormat(
          "admission wait budget spent (%llu ms); the service is saturated, "
          "retry later",
          (unsigned long long)config_.queue_wait_limit_ms));
    }
    Clock::time_point until =
        Clock::now() + std::chrono::milliseconds(kQueuePollMillis);
    if (bounded) until = std::min(until, wait_deadline);
    if (!request.deadline.IsInfinite()) {
      until = std::min(until, request.deadline.when());
    }
    waiter.cv.wait_until(lock, until);
  }
  *waited_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
  return Status::OK();
}

void SortService::ReleaseSlot(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  ROWSORT_DASSERT(running_ > 0);
  --running_;
  auto it = tenant_running_.find(tenant);
  ROWSORT_DASSERT(it != tenant_running_.end() && it->second > 0);
  if (--it->second == 0) tenant_running_.erase(it);
  PumpAdmissionLocked();
}

void SortService::EnsureCapacity(uint64_t bytes, RelationalSort* requester) {
  if (global_tracker_.limit() == 0) return;
  // Victims that freed nothing (all runs already spilled, or mid-merge) are
  // not asked again this round — the pressure they cannot relieve falls
  // through to the requester's own spilling.
  std::vector<const RelationalSort*> unhelpful;
  for (;;) {
    const uint64_t reserved = global_tracker_.reserved();
    if (reserved + bytes <= global_tracker_.limit()) return;
    const uint64_t need = reserved + bytes - global_tracker_.limit();
    ActiveQuery* victim = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (ActiveQuery* q : active_) {
        if (q->sort == requester) continue;
        if (std::find(unhelpful.begin(), unhelpful.end(), q->sort) !=
            unhelpful.end()) {
          continue;
        }
        if (q->sort->memory_tracker().reserved() == 0) continue;
        // Policy (docs/service.md): lowest priority class first; within a
        // class, the largest resident footprint (fewest victims for the
        // most relief).
        if (victim == nullptr || q->priority > victim->priority ||
            (q->priority == victim->priority &&
             q->sort->memory_tracker().reserved() >
                 victim->sort->memory_tracker().reserved())) {
          victim = q;
        }
      }
      if (victim != nullptr) ++victim->pins;
    }
    if (victim == nullptr) return;  // requester spills its own runs instead
    // Outside the service lock: the victim's spill takes its runs_mutex_
    // and does real I/O. The pin keeps its ActiveQuery (and the sort it
    // points to) alive until we drop it.
    const uint64_t freed = victim->sort->SpillResidentBytes(need);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--victim->pins == 0) unpinned_.notify_all();
      if (freed > 0) {
        stats_.victim_spills += 1;
        stats_.victim_bytes_freed += freed;
      }
    }
    if (freed == 0) unhelpful.push_back(victim->sort);
  }
}

StatusOr<Table> SortService::Sort(const Table& input, const SortSpec& spec,
                                  const SortRequest& request,
                                  SortMetrics* metrics_out) {
  if (metrics_out != nullptr) metrics_out->Reset();
  const std::string& tenant = EffectiveTenant(request);

  // One engine-facing token carries both interruption channels: the source
  // trips on the request deadline by itself, and the sink tasks bridge the
  // external token into it at chunk granularity (first cause wins).
  CancellationSource source(request.deadline);
  const CancellationToken token = source.token();
  const CancellationToken& external = request.cancellation;

  uint64_t waited_ns = 0;
  ROWSORT_RETURN_NOT_OK(Admit(request, tenant, external, &waited_ns));
  queue_wait_ns_.Record(waited_ns);
  struct SlotGuard {
    SortService* service;
    const std::string* tenant;
    ~SlotGuard() { service->ReleaseSlot(*tenant); }
  } slot_guard{this, &tenant};

  SortEngineConfig config = request.engine;
  config.parent_tracker = &global_tracker_;
  config.governor = this;
  config.cancellation = token;
  RelationalSort sort(spec, input.types(), config);

  // Visible to victim selection while (and only while) the sink phase can
  // run; the guard waits out any in-flight victim spill before `sort` dies.
  ActiveQuery query;
  query.sort = &sort;
  query.priority = request.priority;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    active_.push_back(&query);
  }
  struct ActiveGuard {
    SortService* service;
    ActiveQuery* query;
    ~ActiveGuard() {
      std::unique_lock<std::mutex> lock(service->mutex_);
      service->unpinned_.wait(lock, [this] { return query->pins == 0; });
      auto& active = service->active_;
      active.erase(std::find(active.begin(), active.end(), query));
    }
  } active_guard{this, &query};

  // Morsel-driven sinks over the shared pool, at the request's priority.
  const uint64_t sink_tasks = std::max<uint64_t>(config_.threads_per_query, 1);
  std::atomic<uint64_t> next_chunk{0};
  std::vector<std::function<void()>> tasks;
  tasks.reserve(sink_tasks);
  for (uint64_t t = 0; t < sink_tasks; ++t) {
    tasks.push_back([&sort, &input, &next_chunk, &source, &external] {
      auto local = sort.MakeLocalState();
      while (true) {
        uint64_t c = next_chunk.fetch_add(1);
        if (c >= input.ChunkCount()) break;
        if (external.CanBeCancelled() && external.IsCancelled()) {
          source.RequestCancel(external.cause());
        }
        if (!sort.Sink(*local, input.chunk(c)).ok()) break;
      }
      (void)sort.CombineLocal(*local);  // status is recorded in the sort
    });
  }
  Status st;
  try {
    pool_.RunBatch(std::move(tasks), token, request.priority);
  } catch (const CancelledError& e) {
    st = e.ToStatus();
  } catch (const std::bad_alloc&) {
    st = Status::OutOfMemory("service sort sink: allocation failed");
  }
  if (st.ok()) st = sort.status();
  if (st.ok()) {
    if (external.CanBeCancelled() && external.IsCancelled()) {
      source.RequestCancel(external.cause());
    }
    st = sort.Finalize(&pool_);
  }
  auto classify = [this](const Status& s) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (s.ok()) {
      stats_.completed += 1;
    } else if (s.IsCancellation()) {
      stats_.cancelled += 1;
    } else {
      stats_.failed += 1;
    }
  };
  if (!st.ok()) {
    if (metrics_out != nullptr) *metrics_out = sort.metrics();
    classify(st);
    return st;
  }

  try {
    Table output(input.types(), input.names());
    uint64_t offset = 0;
    while (offset < sort.row_count()) {
      DataChunk chunk = output.NewChunk();
      offset += sort.ScanChunk(offset, &chunk);
      output.Append(std::move(chunk));
    }
    if (metrics_out != nullptr) *metrics_out = sort.metrics();
    classify(Status::OK());
    return output;
  } catch (const std::bad_alloc&) {
    Status oom = Status::OutOfMemory("service sort output: allocation failed");
    if (metrics_out != nullptr) *metrics_out = sort.metrics();
    classify(oom);
    return oom;
  }
}

}  // namespace rowsort
