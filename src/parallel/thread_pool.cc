// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "parallel/thread_pool.h"

#include <algorithm>

namespace rowsort {

const char* TaskPriorityName(TaskPriority priority) {
  switch (priority) {
    case TaskPriority::kHigh:
      return "high";
    case TaskPriority::kNormal:
      return "normal";
    case TaskPriority::kLow:
      return "low";
  }
  return "unknown";
}

ThreadPool::ThreadPool(uint64_t thread_count) {
  if (thread_count == 0) {
    thread_count = std::max(1u, std::thread::hardware_concurrency());
  }
  // One busy slot per worker plus one shared by submitting threads (RunBatch
  // helps drain the queue).
  busy_ns_ = std::vector<std::atomic<uint64_t>>(thread_count + 1);
  workers_.reserve(thread_count);
  for (uint64_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_workers_.notify_all();
  for (auto& worker : workers_) worker.join();
}

ThreadPoolStatsSnapshot ThreadPool::StatsSnapshot() const {
  ThreadPoolStatsSnapshot out;
  out.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  out.tasks_skipped = tasks_skipped_.load(std::memory_order_relaxed);
  out.batches = batches_.load(std::memory_order_relaxed);
  for (uint64_t p = 0; p < kTaskPriorityCount; ++p) {
    out.tasks_per_priority[p] =
        tasks_per_priority_[p].load(std::memory_order_relaxed);
  }
  out.queue_wait_ns = queue_wait_ns_.Snapshot();
  out.run_ns = run_ns_.Snapshot();
  out.thread_busy_seconds.reserve(busy_ns_.size());
  for (const auto& ns : busy_ns_) {
    out.thread_busy_seconds.push_back(
        ns.load(std::memory_order_relaxed) * 1e-9);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.max_queue_depth = max_queue_depth_;
  }
  return out;
}

void ThreadPool::ExecuteTask(Task& task) {
  // A throwing task must not unwind a worker thread (std::terminate) or
  // poison the queue: capture the first exception for the batch's submitting
  // thread and keep the barrier intact. Queued siblings of the same batch
  // are skipped from here on (see ShouldSkipLocked) — their output dies with
  // the batch anyway. Other batches are untouched.
  try {
    task.fn();
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!task.batch->error) task.batch->error = std::current_exception();
  }
}

bool ThreadPool::ShouldSkipLocked(BatchState& batch) {
  if (batch.error) return true;
  if (batch.cancelled) return true;
  // The token check leaves the mutex-held path as one relaxed load plus (at
  // most) a steady_clock read; once it fires, latch so later pops don't
  // even pay that.
  if (batch.cancel.CanBeCancelled() && batch.cancel.IsCancelled()) {
    batch.cancelled = true;
    return true;
  }
  return false;
}

ThreadPool::Task ThreadPool::PopTaskLocked() {
  for (auto& queue : queues_) {
    if (queue.empty()) continue;
    Task task = std::move(queue.front());
    queue.pop();
    queued_.fetch_sub(1, std::memory_order_relaxed);
    return task;
  }
  ROWSORT_DASSERT(false && "PopTaskLocked called with no task queued");
  return Task{};
}

void ThreadPool::FinishTask(Task& task, bool skip, uint64_t executor_index) {
  if (!skip) {
    // The task runs in its submitter's trace scope: spans it records (and
    // spans of anything it submits in turn) belong to that query's track
    // group, not to whichever worker happened to execute it.
    TraceScopeGuard scope(task.trace_scope);
    const bool stats = stats_enabled_.load(std::memory_order_relaxed);
    if (stats || tracer_ != nullptr) {
      int64_t start_ns = Tracer::NowNanos();
      if (stats && task.enqueue_ns != 0) {
        queue_wait_ns_.Record(
            static_cast<uint64_t>(start_ns - task.enqueue_ns));
      }
      {
        TraceSpan span(tracer_, "pool.task", "parallel");
        ExecuteTask(task);
      }
      if (stats) {
        uint64_t run = static_cast<uint64_t>(Tracer::NowNanos() - start_ns);
        run_ns_.Record(run);
        busy_ns_[executor_index].fetch_add(run, std::memory_order_relaxed);
        tasks_executed_.fetch_add(1, std::memory_order_relaxed);
        tasks_per_priority_[static_cast<uint64_t>(task.priority)].fetch_add(
            1, std::memory_order_relaxed);
      }
    } else {
      ExecuteTask(task);
    }
  } else if (stats_enabled_.load(std::memory_order_relaxed)) {
    tasks_skipped_.fetch_add(1, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (--task.batch->outstanding == 0) batch_done_.notify_all();
  }
}

void ThreadPool::WorkerLoop(uint64_t worker_index) {
  while (true) {
    Task task;
    bool skip = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_workers_.wait(lock, [this] { return shutdown_ || queued_ > 0; });
      if (shutdown_ && queued_ == 0) return;
      task = PopTaskLocked();
      skip = ShouldSkipLocked(*task.batch);
    }
    FinishTask(task, skip, worker_index);
  }
}

bool ThreadPool::RunOneTask() {
  Task task;
  bool skip = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queued_ == 0) return false;
    task = PopTaskLocked();
    skip = ShouldSkipLocked(*task.batch);
  }
  FinishTask(task, skip, workers_.size());
  return true;
}

void ThreadPool::RunBatch(std::vector<std::function<void()>> tasks,
                          CancellationToken cancellation,
                          TaskPriority priority) {
  if (tasks.empty()) return;
  const bool stats = stats_enabled_.load(std::memory_order_relaxed);
  const int64_t enqueue_ns = stats ? Tracer::NowNanos() : 0;
  if (stats) batches_.fetch_add(1, std::memory_order_relaxed);
  // Lives on this frame until the barrier below releases — every task of
  // the batch has retired by then, so no queued Task can outlive it.
  BatchState batch;
  batch.cancel = std::move(cancellation);
  const uint64_t trace_scope = Tracer::CurrentScope();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch.outstanding = tasks.size();
    auto& queue = queues_[static_cast<uint64_t>(priority)];
    for (auto& task : tasks) {
      queue.push(Task{std::move(task), &batch, priority, enqueue_ns,
                      trace_scope});
    }
    const uint64_t queued =
        queued_.fetch_add(tasks.size(), std::memory_order_relaxed) +
        tasks.size();
    if (stats && queued > max_queue_depth_) {
      max_queue_depth_ = queued;
    }
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->RecordCounter("pool.queue_depth",
                           static_cast<int64_t>(tasks.size()));
  }
  wake_workers_.notify_all();
  // Help drain the queue (any batch's tasks — work conservation keeps every
  // concurrent submitter making progress), then wait for stragglers.
  while (RunOneTask()) {
  }
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    batch_done_.wait(lock, [&batch] { return batch.outstanding == 0; });
    error = batch.error;
  }
  // First error of this batch wins; rethrown on the submitting thread after
  // the barrier.
  if (error) std::rethrow_exception(error);
}

void ThreadPool::ParallelFor(uint64_t count,
                             const std::function<void(uint64_t)>& fn,
                             uint64_t grain, CancellationToken cancellation,
                             TaskPriority priority) {
  if (count == 0) return;
  if (grain == 0) {
    // A few blocks per worker balances uneven per-index work without
    // scheduling more than O(threads) tasks.
    const uint64_t target_tasks = std::max<uint64_t>(thread_count(), 1) * 4;
    grain = std::max<uint64_t>(1, (count + target_tasks - 1) / target_tasks);
  }
  const uint64_t num_tasks = (count + grain - 1) / grain;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(num_tasks);
  for (uint64_t t = 0; t < num_tasks; ++t) {
    const uint64_t begin = t * grain;
    const uint64_t end = std::min(count, begin + grain);
    tasks.push_back([begin, end, &fn] {
      for (uint64_t i = begin; i < end; ++i) fn(i);
    });
  }
  RunBatch(std::move(tasks), std::move(cancellation), priority);
}

}  // namespace rowsort
