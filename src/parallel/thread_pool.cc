// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "parallel/thread_pool.h"

#include <algorithm>

namespace rowsort {

ThreadPool::ThreadPool(uint64_t thread_count) {
  if (thread_count == 0) {
    thread_count = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(thread_count);
  for (uint64_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_workers_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::ExecuteTask(std::function<void()>& task) {
  // A throwing task must not unwind a worker thread (std::terminate) or
  // poison the queue: capture the first exception for the submitting thread
  // and keep the barrier intact. Queued siblings are skipped from here on
  // (see ShouldSkipLocked) — their output dies with the batch anyway.
  try {
    task();
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!batch_error_) batch_error_ = std::current_exception();
  }
}

bool ThreadPool::ShouldSkipLocked() {
  if (batch_error_) return true;
  if (batch_cancelled_) return true;
  // The token check leaves the mutex-held path as one relaxed load plus (at
  // most) a steady_clock read; once it fires, latch so later pops don't
  // even pay that.
  if (batch_cancel_.CanBeCancelled() && batch_cancel_.IsCancelled()) {
    batch_cancelled_ = true;
    return true;
  }
  return false;
}

void ThreadPool::FinishTask(std::function<void()>& task, bool skip) {
  if (!skip) ExecuteTask(task);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (--outstanding_ == 0) batch_done_.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    bool skip = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_workers_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      skip = ShouldSkipLocked();
    }
    FinishTask(task, skip);
  }
}

bool ThreadPool::RunOneTask() {
  std::function<void()> task;
  bool skip = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop();
    skip = ShouldSkipLocked();
  }
  FinishTask(task, skip);
  return true;
}

void ThreadPool::RunBatch(std::vector<std::function<void()>> tasks,
                          CancellationToken cancellation) {
  if (tasks.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_cancel_ = std::move(cancellation);
    batch_cancelled_ = false;
    outstanding_ += tasks.size();
    for (auto& task : tasks) queue_.push(std::move(task));
  }
  wake_workers_.notify_all();
  // Help drain the queue, then wait for stragglers.
  while (RunOneTask()) {
  }
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    batch_done_.wait(lock, [this] { return outstanding_ == 0; });
    error = batch_error_;
    batch_error_ = nullptr;
    batch_cancel_ = CancellationToken();
    batch_cancelled_ = false;
  }
  // First error wins; rethrown on the submitting thread after the barrier.
  if (error) std::rethrow_exception(error);
}

void ThreadPool::ParallelFor(uint64_t count,
                             const std::function<void(uint64_t)>& fn,
                             uint64_t grain, CancellationToken cancellation) {
  if (count == 0) return;
  if (grain == 0) {
    // A few blocks per worker balances uneven per-index work without
    // scheduling more than O(threads) tasks.
    const uint64_t target_tasks = std::max<uint64_t>(thread_count(), 1) * 4;
    grain = std::max<uint64_t>(1, (count + target_tasks - 1) / target_tasks);
  }
  const uint64_t num_tasks = (count + grain - 1) / grain;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(num_tasks);
  for (uint64_t t = 0; t < num_tasks; ++t) {
    const uint64_t begin = t * grain;
    const uint64_t end = std::min(count, begin + grain);
    tasks.push_back([begin, end, &fn] {
      for (uint64_t i = begin; i < end; ++i) fn(i);
    });
  }
  RunBatch(std::move(tasks), std::move(cancellation));
}

}  // namespace rowsort
