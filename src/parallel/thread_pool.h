// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/histogram.h"
#include "common/macros.h"
#include "common/trace.h"

namespace rowsort {

/// Scheduling class of a batch (service layer, docs/service.md): interactive
/// queries submit kHigh, the default pipeline kNormal, background giants
/// kLow. Workers always drain the highest non-empty class first; within a
/// class, FIFO.
enum class TaskPriority : uint8_t { kHigh = 0, kNormal = 1, kLow = 2 };
constexpr uint64_t kTaskPriorityCount = 3;

const char* TaskPriorityName(TaskPriority priority);

/// Snapshot of a ThreadPool's activity since construction, folded into a
/// SortProfile's "parallel" node (docs/observability.md). Produced by
/// ThreadPool::StatsSnapshot(); empty unless EnableStats(true) was called.
struct ThreadPoolStatsSnapshot {
  uint64_t tasks_executed = 0;
  uint64_t tasks_skipped = 0;  ///< drained unrun: batch error or cancel
  uint64_t batches = 0;
  /// High-water mark of the shared queue depth across *all* concurrent
  /// batches — the scheduler-saturation signal the service reports.
  uint64_t max_queue_depth = 0;
  /// Executed tasks per scheduling class (kHigh / kNormal / kLow).
  std::array<uint64_t, kTaskPriorityCount> tasks_per_priority{};
  DurationHistogram queue_wait_ns;  ///< enqueue -> start, per task
  DurationHistogram run_ns;         ///< start -> finish, per task
  std::vector<double> thread_busy_seconds;  ///< per worker (+1 submitter slot)
};

/// \brief Fixed-size worker pool used by the parallel sorting pipeline
/// (paper §VII: morsel-driven run generation and the parallel merge phase)
/// and shared by every query of a SortService (docs/service.md).
///
/// Tasks are void() callables; RunBatch submits a group and blocks until all
/// of its tasks finish, which is exactly the barrier structure of the
/// pipeline (all runs generated -> merge level by level). Batches may be
/// submitted concurrently from any number of threads: each RunBatch tracks
/// its own barrier, error, and cancellation state, and the submitting thread
/// helps drain the shared queue — so even a fully saturated pool makes
/// progress on every batch (no submitter can deadlock waiting for workers
/// that are busy with other batches).
class ThreadPool {
 public:
  /// Starts \p thread_count workers (0 = hardware concurrency).
  explicit ThreadPool(uint64_t thread_count = 0);
  ~ThreadPool();
  ROWSORT_DISALLOW_COPY_AND_MOVE(ThreadPool);

  uint64_t thread_count() const { return workers_.size(); }

  /// Tasks currently queued (all priority classes, not yet started). One
  /// relaxed load — cheap enough for a metrics collector sampling at 10 Hz+
  /// without touching the pool mutex (docs/observability.md).
  uint64_t queue_depth() const {
    return queued_.load(std::memory_order_relaxed);
  }

  /// Turns on per-task accounting (queue wait, run time, per-thread busy
  /// time, max queue depth, per-priority counts). Off by default: the
  /// accounting is two clock reads per task, negligible for the pipeline's
  /// coarse tasks but not free. Call before submitting work.
  void EnableStats(bool on) {
    stats_enabled_.store(on, std::memory_order_relaxed);
  }

  /// Attaches a tracer: each executed task records a "pool.task" span on
  /// its worker's track and each batch submission records a queue-depth
  /// counter sample. Null (default) = no tracing. The tracer must outlive
  /// all task execution.
  void SetTracer(Tracer* tracer) { tracer_ = tracer; }

  /// Accumulated stats (all zeros unless EnableStats(true) preceded the
  /// work). Per-task histograms are updated as tasks retire, so a snapshot
  /// taken while batches are in flight may lag the in-flight tasks.
  ThreadPoolStatsSnapshot StatsSnapshot() const;

  /// Runs all \p tasks on the pool and waits for completion. The calling
  /// thread participates, so a pool of 1 degrades to serial execution
  /// without deadlock.
  ///
  /// Error propagation: an exception thrown by a task is captured (first
  /// one wins *within the batch*) and rethrown here on the submitting thread
  /// after the batch barrier — a worker-task failure never
  /// std::terminate()s the process. Once a task of a batch has failed,
  /// queued tasks of that batch that have not yet started are *skipped*
  /// (drained without executing): their results would be thrown away with
  /// the batch, so running them only delays the error. Tasks already
  /// executing run to completion — the barrier always holds. Other batches
  /// are unaffected.
  ///
  /// Cancellation: when \p cancellation can fire, it is checked before each
  /// of the batch's tasks starts; once cancelled, not-yet-started tasks are
  /// skipped the same way. RunBatch itself returns normally in that case
  /// (skipping is not an error) — callers observe the token through their
  /// own checks. Tasks that poll the token and throw CancelledError surface
  /// through the exception path like any other failure.
  ///
  /// \p priority picks the scheduling class: workers drain kHigh before
  /// kNormal before kLow, so a service can keep thousands of small
  /// interactive merges ahead of a background giant's.
  ///
  /// Safe to call concurrently from multiple threads.
  void RunBatch(std::vector<std::function<void()>> tasks,
                CancellationToken cancellation = {},
                TaskPriority priority = TaskPriority::kNormal);

  /// Convenience: RunBatch over indices [0, count) of \p fn(index). Indices
  /// are grouped into contiguous blocks so that large index spaces schedule
  /// O(threads) tasks instead of one std::function allocation per index;
  /// \p grain is the minimum indices per task (0 = pick automatically, with
  /// a few blocks per worker for load balance). \p cancellation as in
  /// RunBatch: whole not-yet-started blocks are skipped once it fires.
  void ParallelFor(uint64_t count, const std::function<void(uint64_t)>& fn,
                   uint64_t grain = 0, CancellationToken cancellation = {},
                   TaskPriority priority = TaskPriority::kNormal);

 private:
  /// Per-RunBatch state: barrier count, first error, cancellation latch.
  /// Stack-allocated in RunBatch — every task holds a pointer, and RunBatch
  /// does not return until all of its tasks retired, so the pointer cannot
  /// dangle. All fields are guarded by mutex_.
  struct BatchState {
    uint64_t outstanding = 0;
    std::exception_ptr error;
    CancellationToken cancel;
    bool cancelled = false;  ///< latched result of the token check
  };

  /// Queue element: the callable, its batch, its scheduling class, its
  /// submission stamp (0 when stats are off — no clock read on the untimed
  /// path), and the submitter's trace scope (query id), which the executing
  /// thread adopts so a task's spans land in its query's process group.
  struct Task {
    std::function<void()> fn;
    BatchState* batch = nullptr;
    TaskPriority priority = TaskPriority::kNormal;
    int64_t enqueue_ns = 0;
    uint64_t trace_scope = 0;
  };

  void WorkerLoop(uint64_t worker_index);
  bool RunOneTask();
  void ExecuteTask(Task& task);
  /// True when \p batch should stop launching queued tasks (a task of it
  /// failed, or its token fired). Called with mutex_ held.
  bool ShouldSkipLocked(BatchState& batch);
  /// Pops the front task of the highest non-empty priority class. Called
  /// with mutex_ held and at least one task queued.
  Task PopTaskLocked();
  /// Executes (or skips) an already-popped task and retires it against its
  /// batch's barrier. \p executor_index identifies the running thread's busy
  /// slot: [0, thread_count) = workers, thread_count = submitters.
  void FinishTask(Task& task, bool skip, uint64_t executor_index);

  std::vector<std::thread> workers_;
  mutable std::mutex mutex_;  ///< mutable: StatsSnapshot() is const
  std::condition_variable wake_workers_;
  /// Shared completion signal: each waiter re-checks its own batch's
  /// outstanding count. One cv for all batches keeps FinishTask cheap.
  std::condition_variable batch_done_;
  std::array<std::queue<Task>, kTaskPriorityCount> queues_;
  /// Total tasks across queues_. Written under mutex_; atomic so
  /// queue_depth() can sample it lock-free.
  std::atomic<uint64_t> queued_{0};
  bool shutdown_ = false;

  /// -- observability (inert until EnableStats / SetTracer) -------------
  std::atomic<bool> stats_enabled_{false};
  Tracer* tracer_ = nullptr;
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> tasks_skipped_{0};
  std::atomic<uint64_t> batches_{0};
  std::array<std::atomic<uint64_t>, kTaskPriorityCount> tasks_per_priority_{};
  uint64_t max_queue_depth_ = 0;  ///< guarded by mutex_
  AtomicDurationHistogram queue_wait_ns_;
  AtomicDurationHistogram run_ns_;
  /// Busy (task-running) nanoseconds per executor; the extra tail slot is
  /// shared by all submitting threads helping drain in RunBatch.
  std::vector<std::atomic<uint64_t>> busy_ns_;
};

}  // namespace rowsort
