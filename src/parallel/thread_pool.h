// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/macros.h"

namespace rowsort {

/// \brief Fixed-size worker pool used by the parallel sorting pipeline
/// (paper §VII: morsel-driven run generation and the parallel merge phase).
///
/// Tasks are void() callables; RunBatch submits a group and blocks until all
/// of its tasks finish, which is exactly the barrier structure of the
/// pipeline (all runs generated -> merge level by level).
class ThreadPool {
 public:
  /// Starts \p thread_count workers (0 = hardware concurrency).
  explicit ThreadPool(uint64_t thread_count = 0);
  ~ThreadPool();
  ROWSORT_DISALLOW_COPY_AND_MOVE(ThreadPool);

  uint64_t thread_count() const { return workers_.size(); }

  /// Runs all \p tasks on the pool and waits for completion. The calling
  /// thread participates, so a pool of 1 degrades to serial execution
  /// without deadlock.
  ///
  /// Error propagation: an exception thrown by a task is captured (first
  /// one wins), the remaining tasks of the batch still drain, and the
  /// exception is rethrown here on the submitting thread after the batch
  /// barrier — a worker-task failure never std::terminate()s the process.
  /// Batches must be submitted by one thread at a time.
  void RunBatch(std::vector<std::function<void()>> tasks);

  /// Convenience: RunBatch over indices [0, count) of \p fn(index). Indices
  /// are grouped into contiguous blocks so that large index spaces schedule
  /// O(threads) tasks instead of one std::function allocation per index;
  /// \p grain is the minimum indices per task (0 = pick automatically, with
  /// a few blocks per worker for load balance).
  void ParallelFor(uint64_t count, const std::function<void(uint64_t)>& fn,
                   uint64_t grain = 0);

 private:
  void WorkerLoop();
  bool RunOneTask();
  void ExecuteTask(std::function<void()>& task);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_workers_;
  std::condition_variable batch_done_;
  std::queue<std::function<void()>> queue_;
  uint64_t outstanding_ = 0;
  bool shutdown_ = false;
  std::exception_ptr batch_error_;  ///< first task exception of the batch
};

}  // namespace rowsort
