// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/histogram.h"
#include "common/macros.h"
#include "common/trace.h"

namespace rowsort {

/// Snapshot of a ThreadPool's activity since construction, folded into a
/// SortProfile's "parallel" node (docs/observability.md). Produced by
/// ThreadPool::StatsSnapshot(); empty unless EnableStats(true) was called.
struct ThreadPoolStatsSnapshot {
  uint64_t tasks_executed = 0;
  uint64_t tasks_skipped = 0;  ///< drained unrun: batch error or cancel
  uint64_t batches = 0;
  uint64_t max_queue_depth = 0;
  DurationHistogram queue_wait_ns;  ///< enqueue -> start, per task
  DurationHistogram run_ns;         ///< start -> finish, per task
  std::vector<double> thread_busy_seconds;  ///< per worker (+1 submitter)
};

/// \brief Fixed-size worker pool used by the parallel sorting pipeline
/// (paper §VII: morsel-driven run generation and the parallel merge phase).
///
/// Tasks are void() callables; RunBatch submits a group and blocks until all
/// of its tasks finish, which is exactly the barrier structure of the
/// pipeline (all runs generated -> merge level by level).
class ThreadPool {
 public:
  /// Starts \p thread_count workers (0 = hardware concurrency).
  explicit ThreadPool(uint64_t thread_count = 0);
  ~ThreadPool();
  ROWSORT_DISALLOW_COPY_AND_MOVE(ThreadPool);

  uint64_t thread_count() const { return workers_.size(); }

  /// Turns on per-task accounting (queue wait, run time, per-thread busy
  /// time, max queue depth). Off by default: the accounting is two clock
  /// reads per task, negligible for the pipeline's coarse tasks but not
  /// free. Call before submitting work.
  void EnableStats(bool on) {
    stats_enabled_.store(on, std::memory_order_relaxed);
  }

  /// Attaches a tracer: each executed task records a "pool.task" span on
  /// its worker's track and each batch submission records a queue-depth
  /// counter sample. Null (default) = no tracing. The tracer must outlive
  /// all task execution.
  void SetTracer(Tracer* tracer) { tracer_ = tracer; }

  /// Accumulated stats (all zeros unless EnableStats(true) preceded the
  /// work). Call between batches — per-task histograms are updated as tasks
  /// retire.
  ThreadPoolStatsSnapshot StatsSnapshot() const;

  /// Runs all \p tasks on the pool and waits for completion. The calling
  /// thread participates, so a pool of 1 degrades to serial execution
  /// without deadlock.
  ///
  /// Error propagation: an exception thrown by a task is captured (first
  /// one wins) and rethrown here on the submitting thread after the batch
  /// barrier — a worker-task failure never std::terminate()s the process.
  /// Once a task has failed, queued tasks of the batch that have not yet
  /// started are *skipped* (drained without executing): their results would
  /// be thrown away with the batch, so running them only delays the error.
  /// Tasks already executing on other workers run to completion — the
  /// barrier always holds.
  ///
  /// Cancellation: when \p cancellation can fire, it is checked before each
  /// task starts; once cancelled, not-yet-started tasks are skipped the same
  /// way. RunBatch itself returns normally in that case (skipping is not an
  /// error) — callers observe the token through their own checks. Tasks
  /// that poll the token and throw CancelledError surface through the
  /// exception path like any other failure.
  ///
  /// Batches must be submitted by one thread at a time.
  void RunBatch(std::vector<std::function<void()>> tasks,
                CancellationToken cancellation = {});

  /// Convenience: RunBatch over indices [0, count) of \p fn(index). Indices
  /// are grouped into contiguous blocks so that large index spaces schedule
  /// O(threads) tasks instead of one std::function allocation per index;
  /// \p grain is the minimum indices per task (0 = pick automatically, with
  /// a few blocks per worker for load balance). \p cancellation as in
  /// RunBatch: whole not-yet-started blocks are skipped once it fires.
  void ParallelFor(uint64_t count, const std::function<void(uint64_t)>& fn,
                   uint64_t grain = 0, CancellationToken cancellation = {});

 private:
  /// Queue element: the callable plus its submission stamp (0 when stats
  /// are off — no clock read on the untimed path).
  struct Task {
    std::function<void()> fn;
    int64_t enqueue_ns = 0;
  };

  void WorkerLoop(uint64_t worker_index);
  bool RunOneTask();
  void ExecuteTask(std::function<void()>& task);
  /// True when the current batch should stop launching queued tasks (a task
  /// failed, or the batch's token fired). Called with mutex_ held.
  bool ShouldSkipLocked();
  /// Executes (or skips) an already-popped task and retires it against the
  /// batch barrier. \p executor_index identifies the running thread's busy
  /// slot: [0, thread_count) = workers, thread_count = the submitter.
  void FinishTask(Task& task, bool skip, uint64_t executor_index);

  std::vector<std::thread> workers_;
  mutable std::mutex mutex_;  ///< mutable: StatsSnapshot() is const
  std::condition_variable wake_workers_;
  std::condition_variable batch_done_;
  std::queue<Task> queue_;
  uint64_t outstanding_ = 0;
  bool shutdown_ = false;
  std::exception_ptr batch_error_;  ///< first task exception of the batch
  CancellationToken batch_cancel_;  ///< current batch's token (may be empty)
  bool batch_cancelled_ = false;    ///< latched result of the token check

  /// -- observability (inert until EnableStats / SetTracer) -------------
  std::atomic<bool> stats_enabled_{false};
  Tracer* tracer_ = nullptr;
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> tasks_skipped_{0};
  std::atomic<uint64_t> batches_{0};
  uint64_t max_queue_depth_ = 0;  ///< guarded by mutex_
  AtomicDurationHistogram queue_wait_ns_;
  AtomicDurationHistogram run_ns_;
  /// Busy (task-running) nanoseconds per executor; the extra tail slot is
  /// the submitting thread helping drain in RunBatch.
  std::vector<std::atomic<uint64_t>> busy_ns_;
};

}  // namespace rowsort
