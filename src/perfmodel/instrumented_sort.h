// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>

#include "common/bit_util.h"
#include "perfmodel/memory_model.h"

namespace rowsort {

/// \file instrumented_sort.h
/// Introsort whose element movement is replayed through a MemoryModel.
///
/// The algorithm reports every element read/write it performs (swaps,
/// shifts, pivot moves) to the cache simulator; the comparator — which
/// receives element *pointers* — reports its own data accesses and the
/// data-dependent branches of the comparison. Together they regenerate the
/// paper's counter experiments (Tables II/III) for any approach expressed as
/// (element layout, comparator).

namespace instrumented_detail {

template <typename T>
void LogRead(MemoryModel& model, const T* p) {
  model.Access(p, sizeof(T));
}
template <typename T>
void LogWrite(MemoryModel& model, T* p) {
  model.Access(p, sizeof(T));
}

template <typename T, typename LessPtr>
void InsertionSort(T* begin, T* end, MemoryModel& model, LessPtr less) {
  for (T* cur = begin + 1; cur < end; ++cur) {
    if (less(cur, cur - 1)) {
      LogRead(model, cur);
      T tmp = *cur;
      T* sift = cur;
      do {
        LogRead(model, sift - 1);
        LogWrite(model, sift);
        *sift = *(sift - 1);
        --sift;
      } while (sift != begin && less(&tmp, sift - 1));
      LogWrite(model, sift);
      *sift = tmp;
    }
  }
}

template <typename T>
void Swap(T* a, T* b, MemoryModel& model) {
  LogRead(model, a);
  LogRead(model, b);
  LogWrite(model, a);
  LogWrite(model, b);
  T tmp = *a;
  *a = *b;
  *b = tmp;
}

template <typename T, typename LessPtr>
void SiftDown(T* begin, int64_t len, int64_t root, MemoryModel& model,
              LessPtr less) {
  while (true) {
    int64_t child = 2 * root + 1;
    if (child >= len) break;
    if (child + 1 < len && less(begin + child, begin + child + 1)) ++child;
    if (!less(begin + root, begin + child)) break;
    Swap(begin + root, begin + child, model);
    root = child;
  }
}

template <typename T, typename LessPtr>
void HeapSort(T* begin, T* end, MemoryModel& model, LessPtr less) {
  int64_t len = end - begin;
  for (int64_t root = len / 2 - 1; root >= 0; --root) {
    SiftDown(begin, len, root, model, less);
  }
  for (int64_t last = len - 1; last > 0; --last) {
    Swap(begin, begin + last, model);
    SiftDown(begin, last, int64_t(0), model, less);
  }
}

template <typename T, typename LessPtr>
T* Partition(T* begin, T* end, MemoryModel& model, LessPtr less) {
  T* mid = begin + (end - begin) / 2;
  // Median of three.
  T* a = begin;
  T* b = mid;
  T* c = end - 1;
  T* median = less(a, b) ? (less(b, c) ? b : (less(a, c) ? c : a))
                         : (less(a, c) ? a : (less(b, c) ? c : b));
  if (median != begin) Swap(begin, median, model);
  LogRead(model, begin);
  T pivot = *begin;

  T* left = begin;
  T* right = end;
  while (true) {
    do {
      ++left;
    } while (left != end && less(left, &pivot));
    do {
      --right;
    } while (less(&pivot, right));
    if (left >= right) break;
    Swap(left, right, model);
  }
  if (right != begin) Swap(begin, right, model);
  return right;
}

template <typename T, typename LessPtr>
void IntroLoop(T* begin, T* end, int depth, MemoryModel& model, LessPtr less) {
  while (end - begin > 16) {
    if (depth == 0) {
      HeapSort(begin, end, model, less);
      return;
    }
    --depth;
    T* split = Partition(begin, end, model, less);
    if (split - begin < end - (split + 1)) {
      IntroLoop(begin, split, depth, model, less);
      begin = split + 1;
    } else {
      IntroLoop(split + 1, end, depth, model, less);
      end = split;
    }
  }
}

}  // namespace instrumented_detail

/// Sorts [begin, end) with introsort while reporting all element movement to
/// \p model. \p less(const T* a, const T* b) must report its own accesses
/// and branches.
template <typename T, typename LessPtr>
void InstrumentedIntroSort(T* begin, T* end, MemoryModel& model,
                           LessPtr less) {
  if (end - begin < 2) return;
  int depth = 2 * bit_util::Log2Floor(static_cast<uint64_t>(end - begin));
  instrumented_detail::IntroLoop(begin, end, depth, model, less);
  instrumented_detail::InsertionSort(begin, end, model, less);
}

}  // namespace rowsort
