// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include "perfmodel/memory_model.h"
#include "workload/microbench.h"

namespace rowsort {

/// \file counters.h
/// Counter experiments: each function runs one of the paper's sorting
/// approaches on the micro-benchmark data with all data accesses and
/// comparison branches replayed through a fresh MemoryModel, and returns the
/// simulated L1 and branch-predictor counters.
///
///  * Table II: CountColumnarTupleAtATime vs CountColumnarSubsort
///  * Table III: CountRowTupleAtATime vs CountRowSubsort
///  * Fig. 10: CountNormalizedComparisonSort vs CountNormalizedRadixSort
///
/// The comparison sort of Fig. 10 is modelled with the instrumented
/// introsort (same comparison-sort class as pdqsort, identical dynamic
/// memcmp comparator); see EXPERIMENTS.md for the fidelity discussion.

PerfCounters CountColumnarTupleAtATime(const MicroColumns& columns);
PerfCounters CountColumnarSubsort(const MicroColumns& columns);
PerfCounters CountRowTupleAtATime(const MicroColumns& columns);
PerfCounters CountRowSubsort(const MicroColumns& columns);
PerfCounters CountNormalizedComparisonSort(const MicroColumns& columns);
PerfCounters CountNormalizedRadixSort(const MicroColumns& columns);

}  // namespace rowsort
