// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "perfmodel/counters.h"

#include <cstring>
#include <vector>

#include "approaches/approaches.h"
#include "common/bit_util.h"
#include "common/macros.h"
#include "perfmodel/instrumented_sort.h"

namespace rowsort {

namespace {

// Branch site ids so distinct comparison branches train distinct predictor
// entries.
constexpr uint64_t kSiteResult = 0x1000;
constexpr uint64_t kSiteNextColumn = 0x2000;

// ------------------------------ columnar ------------------------------

struct ColumnarTupleLess {
  const MicroColumns* columns;
  MemoryModel* model;

  bool operator()(const uint32_t* a, const uint32_t* b) const {
    // Reading the indices themselves.
    model->Access(a, sizeof(uint32_t));
    model->Access(b, sizeof(uint32_t));
    const uint64_t num_cols = columns->size();
    bool result = false;
    for (uint64_t c = 0; c < num_cols; ++c) {
      const uint32_t* col = (*columns)[c].data();
      uint32_t va = col[*a];
      uint32_t vb = col[*b];
      // Random access into both columns (§IV-A drawback 1).
      model->Access(col + *a, sizeof(uint32_t));
      model->Access(col + *b, sizeof(uint32_t));
      bool tie = va == vb;
      // The "compare the next key column?" branch (§IV-A drawback 2).
      model->Branch(kSiteNextColumn + c, tie);
      if (!tie) {
        result = va < vb;
        break;
      }
    }
    model->Branch(kSiteResult, result);
    return result;
  }
};

struct ColumnarSingleColumnLess {
  const uint32_t* column;
  MemoryModel* model;

  bool operator()(const uint32_t* a, const uint32_t* b) const {
    model->Access(a, sizeof(uint32_t));
    model->Access(b, sizeof(uint32_t));
    model->Access(column + *a, sizeof(uint32_t));
    model->Access(column + *b, sizeof(uint32_t));
    bool result = column[*a] < column[*b];
    model->Branch(kSiteResult, result);
    return result;
  }
};

void ColumnarSubsortRange(const MicroColumns& columns, uint32_t* idxs,
                          uint64_t begin, uint64_t end, uint64_t col,
                          MemoryModel& model) {
  const uint32_t* data = columns[col].data();
  InstrumentedIntroSort(idxs + begin, idxs + end, model,
                        ColumnarSingleColumnLess{data, &model});
  if (col + 1 == columns.size()) return;
  uint64_t run_start = begin;
  for (uint64_t i = begin + 1; i <= end; ++i) {
    bool boundary = true;
    if (i != end) {
      // Tie scan re-reads the column (the re-scanning cost the paper notes
      // for subsort in §IV-B).
      model.Access(idxs + i, sizeof(uint32_t));
      model.Access(data + idxs[i], sizeof(uint32_t));
      boundary = data[idxs[i]] != data[idxs[run_start]];
    }
    if (boundary) {
      if (i - run_start > 1) {
        ColumnarSubsortRange(columns, idxs, run_start, i, col + 1, model);
      }
      run_start = i;
    }
  }
}

// -------------------------------- rows --------------------------------

template <uint64_t W>
struct Blob {
  uint8_t bytes[W];
};

template <uint64_t W>
struct RowTupleLess {
  uint64_t num_keys;
  MemoryModel* model;

  bool operator()(const Blob<W>* a, const Blob<W>* b) const {
    bool result = false;
    for (uint64_t c = 0; c < num_keys; ++c) {
      uint32_t va =
          bit_util::LoadUnaligned<uint32_t>(a->bytes + c * sizeof(uint32_t));
      uint32_t vb =
          bit_util::LoadUnaligned<uint32_t>(b->bytes + c * sizeof(uint32_t));
      // Both values of a key column live in the same row: sequential bytes.
      model->Access(a->bytes + c * sizeof(uint32_t), sizeof(uint32_t));
      model->Access(b->bytes + c * sizeof(uint32_t), sizeof(uint32_t));
      bool tie = va == vb;
      model->Branch(kSiteNextColumn + c, tie);
      if (!tie) {
        result = va < vb;
        break;
      }
    }
    model->Branch(kSiteResult, result);
    return result;
  }
};

template <uint64_t W>
struct RowSingleKeyLess {
  uint64_t key;
  MemoryModel* model;

  bool operator()(const Blob<W>* a, const Blob<W>* b) const {
    uint32_t va =
        bit_util::LoadUnaligned<uint32_t>(a->bytes + key * sizeof(uint32_t));
    uint32_t vb =
        bit_util::LoadUnaligned<uint32_t>(b->bytes + key * sizeof(uint32_t));
    model->Access(a->bytes + key * sizeof(uint32_t), sizeof(uint32_t));
    model->Access(b->bytes + key * sizeof(uint32_t), sizeof(uint32_t));
    bool result = va < vb;
    model->Branch(kSiteResult, result);
    return result;
  }
};

template <uint64_t W>
struct MemcmpLess {
  uint64_t key_width;
  MemoryModel* model;

  bool operator()(const Blob<W>* a, const Blob<W>* b) const {
    model->Access(a->bytes, key_width);
    model->Access(b->bytes, key_width);
    bool result = std::memcmp(a->bytes, b->bytes, key_width) < 0;
    model->Branch(kSiteResult, result);
    return result;
  }
};

template <uint64_t W>
void RowSubsortRange(Blob<W>* rows, uint64_t begin, uint64_t end,
                     uint64_t key, uint64_t num_keys, MemoryModel& model) {
  InstrumentedIntroSort(rows + begin, rows + end, model,
                        RowSingleKeyLess<W>{key, &model});
  if (key + 1 == num_keys) return;
  uint64_t run_start = begin;
  for (uint64_t i = begin + 1; i <= end; ++i) {
    bool boundary = true;
    if (i != end) {
      model.Access(rows[i].bytes + key * sizeof(uint32_t), sizeof(uint32_t));
      boundary =
          bit_util::LoadUnaligned<uint32_t>(rows[i].bytes +
                                            key * sizeof(uint32_t)) !=
          bit_util::LoadUnaligned<uint32_t>(rows[run_start].bytes +
                                            key * sizeof(uint32_t));
    }
    if (boundary) {
      if (i - run_start > 1) {
        RowSubsortRange(rows, run_start, i, key + 1, num_keys, model);
      }
      run_start = i;
    }
  }
}

// ----------------------- instrumented radix sort -----------------------

template <uint64_t W>
void InstrumentedRadixLsd(Blob<W>* rows, uint64_t count, uint64_t key_width,
                          MemoryModel& model) {
  std::vector<Blob<W>> aux(count);
  Blob<W>* src = rows;
  Blob<W>* dst = aux.data();
  for (uint64_t d = key_width; d-- > 0;) {
    uint64_t counts[256] = {};
    for (uint64_t i = 0; i < count; ++i) {
      uint8_t byte = src[i].bytes[d];
      model.Access(src[i].bytes + d, 1);
      model.Access(&counts[byte], sizeof(uint64_t));
      ++counts[byte];
    }
    // Copy-skip optimization: constant byte moves nothing.
    bool single = false;
    for (uint64_t b = 0; b < 256; ++b) {
      if (counts[b] == count) single = true;
      if (counts[b] != 0) break;
    }
    if (single) continue;
    uint64_t offsets[256];
    uint64_t sum = 0;
    for (uint64_t b = 0; b < 256; ++b) {
      offsets[b] = sum;
      sum += counts[b];
    }
    for (uint64_t i = 0; i < count; ++i) {
      uint8_t byte = src[i].bytes[d];
      model.Access(src[i].bytes, W);
      model.Access(&offsets[byte], sizeof(uint64_t));
      model.Access(dst[offsets[byte]].bytes, W);
      dst[offsets[byte]] = src[i];
      ++offsets[byte];
    }
    std::swap(src, dst);
  }
  if (src != rows) {
    for (uint64_t i = 0; i < count; ++i) {
      model.Access(src[i].bytes, W);
      model.Access(rows[i].bytes, W);
      rows[i] = src[i];
    }
  }
}

template <uint64_t W>
void InstrumentedRadixMsd(Blob<W>* rows, Blob<W>* aux, uint64_t count,
                          uint64_t key_width, uint64_t digit,
                          MemoryModel& model) {
  while (digit < key_width) {
    if (count <= 1) return;
    if (count <= 24) {
      // Insertion sort on the remaining key suffix (paper §VI-B).
      uint64_t remaining = key_width - digit;
      instrumented_detail::InsertionSort(
          rows, rows + count, model,
          [&model, digit, remaining](const Blob<W>* a, const Blob<W>* b) {
            model.Access(a->bytes + digit, remaining);
            model.Access(b->bytes + digit, remaining);
            bool r =
                std::memcmp(a->bytes + digit, b->bytes + digit, remaining) < 0;
            model.Branch(kSiteResult, r);
            return r;
          });
      return;
    }
    uint64_t counts[256] = {};
    for (uint64_t i = 0; i < count; ++i) {
      uint8_t byte = rows[i].bytes[digit];
      model.Access(rows[i].bytes + digit, 1);
      model.Access(&counts[byte], sizeof(uint64_t));
      ++counts[byte];
    }
    bool single = false;
    for (uint64_t b = 0; b < 256; ++b) {
      if (counts[b] == count) single = true;
      if (counts[b] != 0) break;
    }
    if (single) {
      ++digit;
      continue;
    }
    uint64_t offsets[257];
    uint64_t sum = 0;
    for (uint64_t b = 0; b < 256; ++b) {
      offsets[b] = sum;
      sum += counts[b];
    }
    offsets[256] = sum;
    {
      uint64_t cursor[256];
      std::memcpy(cursor, offsets, sizeof(cursor));
      for (uint64_t i = 0; i < count; ++i) {
        uint8_t byte = rows[i].bytes[digit];
        model.Access(rows[i].bytes, W);
        model.Access(aux[cursor[byte]].bytes, W);
        aux[cursor[byte]] = rows[i];
        ++cursor[byte];
      }
      for (uint64_t i = 0; i < count; ++i) {
        model.Access(aux[i].bytes, W);
        model.Access(rows[i].bytes, W);
        rows[i] = aux[i];
      }
    }
    for (uint64_t b = 0; b < 256; ++b) {
      uint64_t bucket = offsets[b + 1] - offsets[b];
      if (bucket > 1) {
        InstrumentedRadixMsd(rows + offsets[b], aux + offsets[b], bucket,
                             key_width, digit + 1, model);
      }
    }
    return;
  }
}

// ------------------------------ dispatch -------------------------------

template <typename Fn>
PerfCounters WithRowBlobs(const MicroColumns& columns, bool normalized,
                          Fn&& fn) {
  MemoryModel model;
  if (normalized) {
    NormalizedRows rows = BuildNormalizedRows(columns);
    if (rows.row_width == 16) {
      fn(reinterpret_cast<Blob<16>*>(rows.buffer.data()), rows.count,
         rows.key_width, model);
    } else {
      ROWSORT_ASSERT(rows.row_width == 24);
      fn(reinterpret_cast<Blob<24>*>(rows.buffer.data()), rows.count,
         rows.key_width, model);
    }
  } else {
    MicroRows rows = BuildMicroRows(columns);
    if (rows.row_width == 16) {
      fn(reinterpret_cast<Blob<16>*>(rows.buffer.data()), rows.count,
         rows.num_keys, model);
    } else {
      ROWSORT_ASSERT(rows.row_width == 24);
      fn(reinterpret_cast<Blob<24>*>(rows.buffer.data()), rows.count,
         rows.num_keys, model);
    }
  }
  return model.Counters();
}

}  // namespace

PerfCounters CountColumnarTupleAtATime(const MicroColumns& columns) {
  MemoryModel model;
  auto idxs = MakeRowIndices(columns[0].size());
  InstrumentedIntroSort(idxs.data(), idxs.data() + idxs.size(), model,
                        ColumnarTupleLess{&columns, &model});
  return model.Counters();
}

PerfCounters CountColumnarSubsort(const MicroColumns& columns) {
  MemoryModel model;
  auto idxs = MakeRowIndices(columns[0].size());
  if (!idxs.empty()) {
    ColumnarSubsortRange(columns, idxs.data(), 0, idxs.size(), 0, model);
  }
  return model.Counters();
}

PerfCounters CountRowTupleAtATime(const MicroColumns& columns) {
  return WithRowBlobs(columns, /*normalized=*/false,
                      [](auto* rows, uint64_t count, uint64_t num_keys,
                         MemoryModel& model) {
                        using BlobT = std::remove_pointer_t<decltype(rows)>;
                        InstrumentedIntroSort(
                            rows, rows + count, model,
                            RowTupleLess<sizeof(BlobT)>{num_keys, &model});
                      });
}

PerfCounters CountRowSubsort(const MicroColumns& columns) {
  return WithRowBlobs(columns, /*normalized=*/false,
                      [](auto* rows, uint64_t count, uint64_t num_keys,
                         MemoryModel& model) {
                        if (count == 0) return;
                        RowSubsortRange(rows, 0, count, 0, num_keys, model);
                      });
}

PerfCounters CountNormalizedComparisonSort(const MicroColumns& columns) {
  return WithRowBlobs(columns, /*normalized=*/true,
                      [](auto* rows, uint64_t count, uint64_t key_width,
                         MemoryModel& model) {
                        using BlobT = std::remove_pointer_t<decltype(rows)>;
                        InstrumentedIntroSort(
                            rows, rows + count, model,
                            MemcmpLess<sizeof(BlobT)>{key_width, &model});
                      });
}

PerfCounters CountNormalizedRadixSort(const MicroColumns& columns) {
  return WithRowBlobs(columns, /*normalized=*/true,
                      [](auto* rows, uint64_t count, uint64_t key_width,
                         MemoryModel& model) {
                        if (key_width <= 4) {
                          InstrumentedRadixLsd(rows, count, key_width, model);
                        } else {
                          using BlobT = std::remove_pointer_t<decltype(rows)>;
                          std::vector<BlobT> aux(count);
                          InstrumentedRadixMsd(rows, aux.data(), count,
                                               key_width, 0, model);
                        }
                      });
}

}  // namespace rowsort
