// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include "perfmodel/branch_sim.h"
#include "perfmodel/cache_sim.h"

namespace rowsort {

/// Counter snapshot reported by instrumented sorts; the software analogue of
/// `perf -e L1-dcache-load-misses,branch-misses` (paper §III-B).
struct PerfCounters {
  uint64_t cache_accesses = 0;
  uint64_t cache_misses = 0;
  uint64_t branches = 0;
  uint64_t branch_misses = 0;
};

/// \brief Bundles the cache and branch simulators the instrumented sorting
/// implementations report into.
class MemoryModel {
 public:
  MemoryModel() = default;

  /// Simulated data access of \p size bytes at \p addr.
  void Access(const void* addr, uint64_t size) { cache_.Access(addr, size); }

  /// Simulated data-dependent branch at \p site with outcome \p taken.
  void Branch(uint64_t site, bool taken) { branch_.Record(site, taken); }

  PerfCounters Counters() const {
    return {cache_.accesses(), cache_.misses(), branch_.branches(),
            branch_.mispredictions()};
  }

  void Reset() {
    cache_.ResetCounters();
    branch_.ResetCounters();
  }

 private:
  CacheSim cache_;
  BranchSim branch_;
};

}  // namespace rowsort
