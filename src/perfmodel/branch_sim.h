// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>
#include <vector>

namespace rowsort {

/// \brief gshare-style branch predictor simulator: a table of 2-bit
/// saturating counters indexed by branch site xor global history.
///
/// Used with CacheSim to regenerate the paper's branch-misprediction
/// counters (Tables II/III, Fig. 10). Instrumented comparators report each
/// data-dependent branch (the comparison outcomes that drive sorting);
/// loop-control branches are nearly perfectly predicted on modern cores and
/// are not modelled.
class BranchSim {
 public:
  explicit BranchSim(uint64_t table_bits = 14)
      : mask_((uint64_t(1) << table_bits) - 1), table_(mask_ + 1, 1) {}

  /// Records the outcome of the branch at \p site; returns true when the
  /// predictor got it wrong.
  bool Record(uint64_t site, bool taken) {
    ++branches_;
    uint64_t index = (site ^ history_) & mask_;
    uint8_t& counter = table_[index];
    bool predicted_taken = counter >= 2;
    bool mispredicted = predicted_taken != taken;
    if (mispredicted) ++mispredictions_;
    if (taken && counter < 3) ++counter;
    if (!taken && counter > 0) --counter;
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & mask_;
    return mispredicted;
  }

  uint64_t branches() const { return branches_; }
  uint64_t mispredictions() const { return mispredictions_; }

  void ResetCounters() { branches_ = mispredictions_ = 0; }

 private:
  uint64_t mask_;
  std::vector<uint8_t> table_;
  uint64_t history_ = 0;
  uint64_t branches_ = 0;
  uint64_t mispredictions_ = 0;
};

}  // namespace rowsort
