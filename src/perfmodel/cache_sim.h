// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace rowsort {

/// \brief Set-associative LRU cache simulator.
///
/// Containers and VMs rarely expose hardware performance counters (the paper
/// needed a bare-metal m5d.metal instance to read them, §III-B), so the
/// counter experiments (Tables II/III, Fig. 10) are regenerated against this
/// software L1-D model instead. Defaults match the paper's Xeon Platinum
/// 8259CL: 32 KiB, 8-way, 64-byte lines.
class CacheSim {
 public:
  CacheSim(uint64_t size_bytes = 32 * 1024, uint64_t line_bytes = 64,
           uint64_t ways = 8)
      : line_bytes_(line_bytes), ways_(ways),
        sets_(size_bytes / line_bytes / ways),
        tags_(sets_ * ways, kInvalidTag), stamps_(sets_ * ways, 0) {
    ROWSORT_ASSERT(sets_ > 0 && (sets_ & (sets_ - 1)) == 0);
  }

  /// Simulates a load/store of \p size bytes at \p addr; multi-line accesses
  /// touch every covered line.
  void Access(const void* addr, uint64_t size) {
    uint64_t a = reinterpret_cast<uint64_t>(addr);
    uint64_t first_line = a / line_bytes_;
    uint64_t last_line = (a + (size ? size : 1) - 1) / line_bytes_;
    for (uint64_t line = first_line; line <= last_line; ++line) {
      AccessLine(line);
    }
  }

  uint64_t accesses() const { return accesses_; }
  uint64_t misses() const { return misses_; }

  void ResetCounters() { accesses_ = misses_ = 0; }

 private:
  static constexpr uint64_t kInvalidTag = ~uint64_t(0);

  void AccessLine(uint64_t line) {
    ++accesses_;
    ++tick_;
    uint64_t set = line & (sets_ - 1);
    uint64_t* tags = &tags_[set * ways_];
    uint64_t* stamps = &stamps_[set * ways_];
    uint64_t victim = 0;
    uint64_t oldest = ~uint64_t(0);
    for (uint64_t w = 0; w < ways_; ++w) {
      if (tags[w] == line) {
        stamps[w] = tick_;
        return;  // hit
      }
      if (stamps[w] < oldest) {
        oldest = stamps[w];
        victim = w;
      }
    }
    ++misses_;
    tags[victim] = line;
    stamps[victim] = tick_;
  }

  uint64_t line_bytes_;
  uint64_t ways_;
  uint64_t sets_;
  std::vector<uint64_t> tags_;
  std::vector<uint64_t> stamps_;
  uint64_t tick_ = 0;
  uint64_t accesses_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace rowsort
