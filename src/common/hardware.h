// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>
#include <string>

namespace rowsort {

/// \brief Host hardware description, used to regenerate the paper's Table I
/// (hardware specification) for the machine the benchmarks actually ran on.
struct HardwareInfo {
  std::string cpu_model;       ///< e.g. "Intel Xeon Platinum 8259CL"
  int logical_cores = 0;       ///< hardware threads visible to the process
  uint64_t total_memory_bytes = 0;
  uint64_t l1d_cache_bytes = 0;   ///< 0 when unknown
  uint64_t l2_cache_bytes = 0;    ///< 0 when unknown
  uint64_t l3_cache_bytes = 0;    ///< 0 when unknown
  uint64_t cache_line_bytes = 64;
  std::string os_version;

  /// Multi-line human-readable summary.
  std::string ToString() const;
};

/// Probes /proc and sysfs for the host description; fields stay at their
/// defaults when a source is unavailable (e.g. in a container).
HardwareInfo DetectHardware();

}  // namespace rowsort
