// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "common/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/string_util.h"

namespace rowsort {

namespace {

/// Process-unique tracer ids, so a thread-local cache entry can never alias
/// a new tracer allocated at a dead tracer's address.
std::atomic<uint64_t> g_next_tracer_id{1};

/// Process-unique scope (query) ids; 0 is reserved for "unscoped".
std::atomic<uint64_t> g_next_scope_id{1};

/// The calling thread's active scope; inherited by pool tasks and I/O jobs
/// through capture-at-submit (thread_pool.cc, io_worker.cc).
thread_local uint64_t t_current_scope = 0;

uint64_t RoundUpPow2(uint64_t v) {
  uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
/// Names are static strings under our control, but a cheap escape keeps the
/// emitted file valid whatever a caller passes.
void AppendJsonEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(static_cast<char>(c));
    } else if (c < 0x20) {
      *out += StringFormat("\\u%04x", c);
    } else {
      out->push_back(static_cast<char>(c));
    }
  }
}

}  // namespace

Tracer::Tracer(uint64_t events_per_thread)
    : capacity_(RoundUpPow2(std::max<uint64_t>(events_per_thread, 2))),
      tracer_id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)) {}

Tracer::~Tracer() = default;

uint64_t Tracer::NextScopeId() {
  return g_next_scope_id.fetch_add(1, std::memory_order_relaxed);
}

uint64_t Tracer::CurrentScope() { return t_current_scope; }

TraceScopeGuard::TraceScopeGuard(uint64_t scope) : previous_(t_current_scope) {
  if (scope != 0) t_current_scope = scope;
}

TraceScopeGuard::~TraceScopeGuard() { t_current_scope = previous_; }

Tracer::ThreadBuffer* Tracer::Buffer() {
  // One-entry cache: the common case is a thread recording into the same
  // tracer again and again; only the first record (or a tracer switch) pays
  // the registration lock.
  thread_local struct {
    uint64_t tracer_id = 0;
    ThreadBuffer* buf = nullptr;
  } cache;
  if (cache.tracer_id == tracer_id_) return cache.buf;

  std::lock_guard<std::mutex> lock(mutex_);
  const std::thread::id self = std::this_thread::get_id();
  ThreadBuffer* buf = nullptr;
  for (const auto& candidate : buffers_) {
    if (candidate->owner == self) {
      buf = candidate.get();
      break;
    }
  }
  if (buf == nullptr) {
    buffers_.push_back(std::make_unique<ThreadBuffer>(capacity_));
    buf = buffers_.back().get();
    buf->ordinal = static_cast<uint32_t>(buffers_.size() - 1);
    buf->owner = self;
  }
  cache.tracer_id = tracer_id_;
  cache.buf = buf;
  return buf;
}

void Tracer::Push(ThreadBuffer* buf, TraceEvent event) {
  event.scope = t_current_scope;
  uint64_t head = buf->head.load(std::memory_order_relaxed);
  buf->ring[head & buf->mask] = event;
  // Release-publish so an exporter that acquires `head` sees the slot.
  buf->head.store(head + 1, std::memory_order_release);
}

void Tracer::RecordSpan(const char* name, const char* category,
                        int64_t start_ns, int64_t end_ns) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.start_ns = start_ns;
  event.duration_ns = end_ns - start_ns;
  event.kind = TraceEvent::Kind::kSpan;
  ThreadBuffer* buf = Buffer();
  event.depth = buf->depth;
  Push(buf, event);
}

void Tracer::RecordInstant(const char* name, const char* category) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.start_ns = NowNanos();
  event.kind = TraceEvent::Kind::kInstant;
  ThreadBuffer* buf = Buffer();
  event.depth = buf->depth;
  Push(buf, event);
}

void Tracer::RecordCounter(const char* name, int64_t value) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.category = "counter";
  event.start_ns = NowNanos();
  event.value = value;
  event.kind = TraceEvent::Kind::kCounter;
  Push(Buffer(), event);
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  for (const auto& buf : buffers_) {
    const uint64_t head = buf->head.load(std::memory_order_acquire);
    const uint64_t kept = std::min<uint64_t>(head, capacity_);
    out.reserve(out.size() + kept);
    for (uint64_t i = head - kept; i < head; ++i) {
      TraceEvent event = buf->ring[i & buf->mask];
      event.thread_ordinal = buf->ordinal;
      out.push_back(event);
    }
  }
  return out;
}

uint64_t Tracer::dropped_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t dropped = 0;
  for (const auto& buf : buffers_) {
    const uint64_t head = buf->head.load(std::memory_order_acquire);
    if (head > capacity_) dropped += head - capacity_;
  }
  return dropped;
}

uint64_t Tracer::thread_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buffers_.size();
}

std::string Tracer::ToChromeTraceJson() const {
  std::vector<TraceEvent> events = Snapshot();
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns < b.start_ns;
            });
  // Normalize timestamps so the trace starts near t=0 (nicer in viewers).
  const int64_t base_ns = events.empty() ? 0 : events.front().start_ns;

  // Scopes become Perfetto processes: every (scope, thread) pair that
  // recorded gets its own named track, so concurrent queries sharing the
  // pool's worker threads land in separate process groups instead of
  // interleaving on one timeline row (docs/observability.md).
  std::vector<std::pair<uint64_t, uint32_t>> tracks;
  for (const TraceEvent& event : events) {
    tracks.emplace_back(event.scope, event.thread_ordinal);
  }
  std::sort(tracks.begin(), tracks.end());
  tracks.erase(std::unique(tracks.begin(), tracks.end()), tracks.end());

  std::string json;
  json.reserve(events.size() * 112 + 256);
  json += "{\"traceEvents\":[";
  bool first = true;
  uint64_t named_scope = ~uint64_t{0};
  for (const auto& [scope, ordinal] : tracks) {
    if (scope != named_scope) {
      named_scope = scope;
      if (!first) json += ",";
      first = false;
      if (scope == 0) {
        json += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
                "\"args\":{\"name\":\"engine\"}}";
      } else {
        json += StringFormat(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%llu,"
            "\"args\":{\"name\":\"query-%llu\"}}",
            (unsigned long long)scope, (unsigned long long)scope);
      }
    }
    json += StringFormat(
        ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%llu,\"tid\":%u,"
        "\"args\":{\"name\":\"sort-thread-%u\"}}",
        (unsigned long long)scope, ordinal, ordinal);
  }
  for (const TraceEvent& event : events) {
    if (!first) json += ",";
    first = false;
    const double ts_us = (event.start_ns - base_ns) / 1e3;
    json += "{\"name\":\"";
    AppendJsonEscaped(&json, event.name);
    json += "\",\"cat\":\"";
    AppendJsonEscaped(&json, event.category);
    json += "\"";
    const unsigned long long pid = (unsigned long long)event.scope;
    switch (event.kind) {
      case TraceEvent::Kind::kSpan:
        json += StringFormat(
            ",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%llu,\"tid\":%u",
            ts_us, event.duration_ns / 1e3, pid, event.thread_ordinal);
        break;
      case TraceEvent::Kind::kInstant:
        json += StringFormat(
            ",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":%llu,\"tid\":%u",
            ts_us, pid, event.thread_ordinal);
        break;
      case TraceEvent::Kind::kCounter:
        json += StringFormat(
            ",\"ph\":\"C\",\"ts\":%.3f,\"pid\":%llu,\"tid\":%u,"
            "\"args\":{\"value\":%lld}",
            ts_us, pid, event.thread_ordinal, (long long)event.value);
        break;
    }
    json += "}";
  }
  json += "]}";
  return json;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  const std::string json = ToChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open trace file " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return Status::IOError("cannot write trace file " + path);
  }
  return Status::OK();
}

}  // namespace rowsort
