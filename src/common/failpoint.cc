// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "common/failpoint.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>

namespace rowsort {
namespace failpoint {

namespace {

constexpr uint64_t kFireForever = UINT64_MAX;

struct State {
  uint64_t skip = 0;       ///< evaluations to pass before firing
  uint64_t remaining = 1;  ///< fires left (kFireForever = never exhausts)
  uint64_t hits = 0;       ///< evaluations since armed
  /// Probabilistic mode when >= 0: each evaluation fires with this
  /// probability, drawn from the deterministic xorshift stream below.
  double probability = -1.0;
  uint64_t rng_state = 0;
};

/// xorshift64*: tiny, deterministic, plenty for fault injection.
uint64_t NextRandom(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545F4914F6CDD1Dull;
}

struct Registry {
  std::mutex mutex;
  std::map<std::string, State> states;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

/// Armed-failpoint count; lets Evaluate() bail with one relaxed load when
/// nothing is armed, so compiled-in failpoints cost ~nothing in production.
std::atomic<uint64_t> g_armed{0};

void ParseEnvironmentLocked(Registry& registry) {
  const char* env = std::getenv("ROWSORT_FAILPOINTS");
  if (env == nullptr || *env == '\0') return;
  std::string spec(env);
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) continue;  // malformed: skip
    State state;
    std::string counts = entry.substr(eq + 1);
    size_t colon = counts.find(':');
    if (!counts.empty() && counts[0] == 'p') {
      // name=pPROB[:seed] — probabilistic mode.
      state.probability = std::strtod(counts.c_str() + 1, nullptr);
      state.rng_state = 0x9E3779B97F4A7C15ull;  // default seed
      if (colon != std::string::npos) {
        uint64_t seed =
            std::strtoull(counts.c_str() + colon + 1, nullptr, 10);
        state.rng_state = seed * 0x9E3779B97F4A7C15ull + 1;
      }
    } else {
      state.skip = std::strtoull(counts.c_str(), nullptr, 10);
      if (colon != std::string::npos) {
        uint64_t fires =
            std::strtoull(counts.c_str() + colon + 1, nullptr, 10);
        state.remaining = fires == 0 ? kFireForever : fires;
      }
    }
    registry.states[entry.substr(0, eq)] = state;
    g_armed.fetch_add(1, std::memory_order_relaxed);
  }
}

void EnsureEnvParsed() {
  static std::once_flag once;
  std::call_once(once, [] {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    ParseEnvironmentLocked(registry);
  });
}

}  // namespace

bool Enabled() {
#if defined(ROWSORT_FAILPOINTS_ENABLED) && ROWSORT_FAILPOINTS_ENABLED
  return true;
#else
  return false;
#endif
}

void Arm(const char* name, uint64_t skip, uint64_t fires) {
  EnsureEnvParsed();
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto [it, inserted] = registry.states.insert_or_assign(
      std::string(name), State{skip, fires == 0 ? kFireForever : fires, 0});
  (void)it;
  if (inserted) g_armed.fetch_add(1, std::memory_order_relaxed);
}

void ArmProbabilistic(const char* name, double probability, uint64_t seed) {
  EnsureEnvParsed();
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  State state;
  state.probability = probability;
  state.rng_state = seed * 0x9E3779B97F4A7C15ull + 1;
  auto [it, inserted] =
      registry.states.insert_or_assign(std::string(name), state);
  (void)it;
  if (inserted) g_armed.fetch_add(1, std::memory_order_relaxed);
}

void Disarm(const char* name) {
  EnsureEnvParsed();
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  if (registry.states.erase(std::string(name)) > 0) {
    g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  EnsureEnvParsed();
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  g_armed.fetch_sub(registry.states.size(), std::memory_order_relaxed);
  registry.states.clear();
}

bool Evaluate(const char* name) {
  EnsureEnvParsed();
  if (g_armed.load(std::memory_order_relaxed) == 0) return false;
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.states.find(std::string(name));
  if (it == registry.states.end()) return false;
  State& state = it->second;
  ++state.hits;
  if (state.probability >= 0.0) {
    // 53-bit uniform draw in [0, 1).
    double draw = static_cast<double>(NextRandom(&state.rng_state) >> 11) *
                  (1.0 / 9007199254740992.0);
    return draw < state.probability;
  }
  if (state.skip > 0) {
    --state.skip;
    return false;
  }
  if (state.remaining == 0) return false;  // exhausted; entry kept for hits
  if (state.remaining != kFireForever) --state.remaining;
  return true;
}

uint64_t HitCount(const char* name) {
  EnsureEnvParsed();
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.states.find(std::string(name));
  return it == registry.states.end() ? 0 : it->second.hits;
}

}  // namespace failpoint
}  // namespace rowsort
