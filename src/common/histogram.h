// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "common/bit_util.h"

namespace rowsort {

/// \file histogram.h
/// Coarse log2-bucketed duration histograms for the observability layer
/// (docs/observability.md). A recorded duration of n nanoseconds lands in
/// bucket floor(log2(n)) + 1 (bucket 0 holds 0–1 ns), so the whole range
/// from nanoseconds to minutes fits in a few dozen counters and recording
/// is one clz plus one increment — cheap enough to leave on for every
/// block sort, merge slice, and spill block.

/// Buckets cover [2^(i-1), 2^i) ns; the last bucket absorbs the tail.
/// 2^38 ns is ~4.6 minutes, enough for any single span the engine records.
constexpr uint64_t kDurationHistogramBuckets = 40;

/// Bucket index for a duration of \p ns nanoseconds.
inline uint64_t DurationBucketIndex(uint64_t ns) {
  if (ns <= 1) return ns;  // 0 -> bucket 0, 1 -> bucket 1
  uint64_t idx = static_cast<uint64_t>(bit_util::Log2Floor(ns)) + 1;
  return idx < kDurationHistogramBuckets ? idx : kDurationHistogramBuckets - 1;
}

/// Inclusive lower bound of bucket \p i in nanoseconds.
inline uint64_t DurationBucketLowerNs(uint64_t i) {
  return i <= 1 ? i : (uint64_t{1} << (i - 1));
}

/// \brief Single-writer log2 duration histogram. Not thread-safe; used for
/// thread-local recording (folded under a lock) and as the snapshot/export
/// form of AtomicDurationHistogram.
class DurationHistogram {
 public:
  void Record(uint64_t ns) {
    buckets_[DurationBucketIndex(ns)] += 1;
    count_ += 1;
    total_ns_ += ns;
    if (ns > max_ns_) max_ns_ = ns;
  }

  void Merge(const DurationHistogram& other) {
    for (uint64_t i = 0; i < kDurationHistogramBuckets; ++i) {
      buckets_[i] += other.buckets_[i];
    }
    count_ += other.count_;
    total_ns_ += other.total_ns_;
    if (other.max_ns_ > max_ns_) max_ns_ = other.max_ns_;
  }

  uint64_t count() const { return count_; }
  uint64_t total_ns() const { return total_ns_; }
  uint64_t max_ns() const { return max_ns_; }
  double total_seconds() const { return total_ns_ * 1e-9; }
  double mean_ns() const {
    return count_ == 0 ? 0.0 : static_cast<double>(total_ns_) / count_;
  }
  uint64_t bucket(uint64_t i) const { return buckets_[i]; }

  /// Upper-bound estimate of the \p q quantile (0 < q <= 1): the upper edge
  /// of the bucket holding the q-th recorded duration.
  uint64_t QuantileUpperNs(double q) const {
    if (count_ == 0) return 0;
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_));
    if (rank >= count_) rank = count_ - 1;
    uint64_t seen = 0;
    for (uint64_t i = 0; i < kDurationHistogramBuckets; ++i) {
      seen += buckets_[i];
      if (seen > rank) return DurationBucketLowerNs(i + 1);
    }
    return max_ns_;
  }

  /// Sparse JSON object: {"count":N,"total_ns":N,"max_ns":N,
  /// "buckets":{"<lower_ns>":N,...}} (only non-empty buckets appear).
  std::string ToJson() const;

  /// Bulk fold used when snapshotting an AtomicDurationHistogram: adds \p n
  /// recordings to bucket \p i without touching total/max.
  void AddBucket(uint64_t i, uint64_t n) {
    buckets_[i] += n;
    count_ += n;
  }
  /// Companion to AddBucket: installs the snapshotted totals.
  void SetTotals(uint64_t total_ns, uint64_t max_ns) {
    total_ns_ = total_ns;
    max_ns_ = max_ns;
  }

 private:
  std::array<uint64_t, kDurationHistogramBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t total_ns_ = 0;
  uint64_t max_ns_ = 0;
};

/// \brief Thread-safe log2 duration histogram: relaxed atomic increments,
/// recordable from any number of threads concurrently (merge slices, spill
/// I/O, pool tasks). Snapshot() produces the plain form for export.
class AtomicDurationHistogram {
 public:
  void Record(uint64_t ns) {
    buckets_[DurationBucketIndex(ns)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    // Lock-free running maximum.
    uint64_t prev = max_ns_.load(std::memory_order_relaxed);
    while (ns > prev && !max_ns_.compare_exchange_weak(
                            prev, ns, std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  DurationHistogram Snapshot() const {
    DurationHistogram out;
    // Per-bucket counts are folded directly; a snapshot racing in-flight
    // records may lag by those records, which is fine for coarse profiles.
    for (uint64_t i = 0; i < kDurationHistogramBuckets; ++i) {
      out.AddBucket(i, buckets_[i].load(std::memory_order_relaxed));
    }
    out.SetTotals(total_ns_.load(std::memory_order_relaxed),
                  max_ns_.load(std::memory_order_relaxed));
    return out;
  }

 private:
  std::array<std::atomic<uint64_t>, kDurationHistogramBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_ns_{0};
  std::atomic<uint64_t> max_ns_{0};
};

}  // namespace rowsort
