// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "common/string_util.h"

#include <cstdio>

namespace rowsort {

std::string StringFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string result;
  if (needed > 0) {
    result.resize(static_cast<size_t>(needed));
    std::vsnprintf(result.data(), result.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return result;
}

std::string FormatCount(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string result;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) result.push_back(',');
    result.push_back(*it);
    ++count;
  }
  return std::string(result.rbegin(), result.rend());
}

std::string FormatDuration(double seconds) {
  if (seconds < 1e-6) return StringFormat("%.0fns", seconds * 1e9);
  if (seconds < 1e-3) return StringFormat("%.2fus", seconds * 1e6);
  if (seconds < 1.0) return StringFormat("%.2fms", seconds * 1e3);
  return StringFormat("%.3fs", seconds);
}

std::vector<std::string> SplitString(const std::string& input, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(input.substr(start));
      break;
    }
    parts.push_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

}  // namespace rowsort
