// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "common/retry.h"

#include <algorithm>
#include <thread>

#include "common/string_util.h"

namespace rowsort {

Status RetryState::OnTransientError(const Status& cause, bool made_progress) {
  if (stats_ != nullptr) {
    stats_->retries.fetch_add(1, std::memory_order_relaxed);
  }
  if (made_progress) {
    // The stream is advancing; an operation interrupted a thousand times is
    // fine as long as each interruption moved bytes. Budget and backoff
    // start over.
    attempts_ = 0;
    backoff_us_ = policy_.initial_backoff_us;
    return Status::OK();
  }
  ++attempts_;
  if (attempts_ >= policy_.max_attempts) {
    return Status::IOError(StringFormat(
        "%s (still failing after %llu retries)", cause.message().c_str(),
        static_cast<unsigned long long>(attempts_)));
  }
  return BackOff();
}

Status RetryState::BackOff() {
  uint64_t nap_us = backoff_us_;
  backoff_us_ = std::min(backoff_us_ * 2, policy_.max_backoff_us);
  // The planned nap is what the backoff policy chose; record it whether or
  // not a cancellation cuts the actual sleep short (the histogram answers
  // "how long did retries stall the sort", and a cancelled nap stalls
  // nothing that matters).
  if (stats_ != nullptr) stats_->backoff_waits.Record(nap_us * 1000);
  // Sleep in short slices so a cancel or deadline cuts the wait short —
  // a retry loop must not be the reason a cancelled sort lingers.
  constexpr uint64_t kSliceUs = 500;
  while (nap_us > 0) {
    if (token_ != nullptr && token_->IsCancelled()) {
      return CancellationToken::StatusForCause(token_->cause());
    }
    uint64_t slice = std::min(nap_us, kSliceUs);
    std::this_thread::sleep_for(std::chrono::microseconds(slice));
    nap_us -= slice;
  }
  if (token_ != nullptr && token_->IsCancelled()) {
    return CancellationToken::StatusForCause(token_->cause());
  }
  return Status::OK();
}

}  // namespace rowsort
