// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>

namespace rowsort {
namespace failpoint {

/// \file failpoint.h
/// Deterministic fault injection for the robustness tests: "fail the Nth
/// spill write", "fail the Nth allocation in Sink". Sites are compiled in
/// under the ROWSORT_FAILPOINTS CMake option (default ON; one relaxed atomic
/// load per site when nothing is armed) and do nothing when it is OFF.
///
/// Programmatic activation:
///   failpoint::Arm("external_run_write", /*skip=*/2);  // fail the 3rd write
///   ... run the scenario ...
///   failpoint::DisarmAll();
///
/// Probabilistic activation, for "a flaky disk fails ~10% of operations"
/// scenarios. Deterministic: a seeded xorshift stream decides each
/// evaluation, so a failing run replays exactly.
///   failpoint::ArmProbabilistic("external_run_write_short", 0.1, 42);
///
/// Environment activation (parsed once, on the first evaluation):
///   ROWSORT_FAILPOINTS="external_run_write=2,sink_alloc=0:3,
///                       external_run_read_eintr=p0.1:7"
/// where each entry is name=skip[:fires] (fires defaults to 1; fires=0 means
/// fire on every evaluation after the skip) or name=pPROB[:seed] for the
/// probabilistic mode.

/// True when failpoint support was compiled in.
bool Enabled();

/// Arms \p name: the next \p skip evaluations pass, then \p fires
/// evaluations fail (0 = fail forever). Re-arming replaces the state.
void Arm(const char* name, uint64_t skip = 0, uint64_t fires = 1);

/// Arms \p name probabilistically: each evaluation fails with probability
/// \p probability, decided by a deterministic stream seeded with \p seed.
/// Re-arming replaces the state.
void ArmProbabilistic(const char* name, double probability,
                      uint64_t seed = 42);

/// Disarms \p name (no-op when not armed).
void Disarm(const char* name);

/// Disarms everything (test teardown).
void DisarmAll();

/// Evaluates \p name: returns true when the site should fail now. Called by
/// the ROWSORT_FAILPOINT macro; tests normally don't call this directly.
bool Evaluate(const char* name);

/// Total evaluations of \p name since it was last armed (diagnostics).
uint64_t HitCount(const char* name);

}  // namespace failpoint
}  // namespace rowsort

#if defined(ROWSORT_FAILPOINTS_ENABLED) && ROWSORT_FAILPOINTS_ENABLED
/// Evaluates to true when the named failpoint fires; the site decides what
/// failing means (throw std::bad_alloc, return Status::IOError, ...).
#define ROWSORT_FAILPOINT(name) (::rowsort::failpoint::Evaluate(name))
#else
#define ROWSORT_FAILPOINT(name) (false)
#endif
