// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/macros.h"

namespace rowsort {

/// \brief Atomic reservation counter governing the sort pipeline's working
/// set (Future Work §IX: graceful degradation for blocking operators).
///
/// Components that hold row data reserve their resident bytes here; the
/// engine consults WouldExceed() before growing its working set and spills
/// sorted runs to disk until the reservation fits. A limit of 0 means
/// unlimited (accounting still happens so peak() stays meaningful).
///
/// The tracker never fails a reservation itself — enforcement is the
/// caller's job (spill, then reserve). This keeps accounting exact even for
/// allocations that cannot be avoided (e.g. the final merged result).
///
/// Trackers nest: a tracker constructed with a \p parent forwards every
/// Reserve/Release to it, so a per-query budget can live under a service's
/// global budget. WouldExceed()/OverLimit() consult the whole chain — a
/// reservation that fits the query budget but would breach the global one
/// still reports exceeded, which is what lets the engine's spill-then-
/// reserve policy respond to *global* pressure, not just its own limit.
/// The parent must outlive the child.
class MemoryTracker {
 public:
  explicit MemoryTracker(uint64_t limit_bytes = 0,
                         MemoryTracker* parent = nullptr)
      : limit_(limit_bytes), parent_(parent) {}
  ROWSORT_DISALLOW_COPY_AND_MOVE(MemoryTracker);

  void set_limit(uint64_t limit_bytes) { limit_ = limit_bytes; }
  uint64_t limit() const { return limit_; }
  MemoryTracker* parent() const { return parent_; }

  /// Accounts \p bytes of resident memory (unconditional; propagates to the
  /// parent chain).
  void Reserve(uint64_t bytes) {
    if (bytes == 0) return;
    uint64_t now = reserved_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    // Keep the high-water mark; CAS loop because peaks race.
    uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
    }
    if (parent_ != nullptr) parent_->Reserve(bytes);
  }

  /// Releases \p bytes previously reserved (propagates to the parent chain).
  void Release(uint64_t bytes) {
    if (bytes == 0) return;
    ROWSORT_DASSERT(reserved_.load(std::memory_order_relaxed) >= bytes);
    reserved_.fetch_sub(bytes, std::memory_order_relaxed);
    if (parent_ != nullptr) parent_->Release(bytes);
  }

  /// True when adding \p extra bytes would exceed this tracker's limit or
  /// any ancestor's (a limit of 0 never constrains).
  bool WouldExceed(uint64_t extra) const {
    if (limit_ != 0 &&
        reserved_.load(std::memory_order_relaxed) + extra > limit_) {
      return true;
    }
    return parent_ != nullptr && parent_->WouldExceed(extra);
  }

  /// True when this tracker or any ancestor enforces a limit — i.e. the
  /// chain can constrain growth at all. Lets the engine pick adaptive
  /// spilling over spill-everything when only a *parent* budget exists
  /// (per-query limit 0 under a service's global limit).
  bool ChainLimited() const {
    return limit_ != 0 || (parent_ != nullptr && parent_->ChainLimited());
  }

  /// True when the current reservation already exceeds this tracker's limit
  /// or any ancestor's.
  bool OverLimit() const {
    if (limit_ != 0 && reserved_.load(std::memory_order_relaxed) > limit_) {
      return true;
    }
    return parent_ != nullptr && parent_->OverLimit();
  }

  uint64_t reserved() const {
    return reserved_.load(std::memory_order_relaxed);
  }
  uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> reserved_{0};
  std::atomic<uint64_t> peak_{0};
  uint64_t limit_;
  MemoryTracker* parent_;
};

/// \brief RAII handle for bytes reserved against a MemoryTracker.
///
/// Owned by the structures whose memory it accounts (RowCollection,
/// SortedRun, the engine's local sink state); releases on destruction and
/// transfers on move, so accounting survives the pipeline's heavy use of
/// move semantics without double releases.
class MemoryReservation {
 public:
  MemoryReservation() = default;
  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;

  MemoryReservation(MemoryReservation&& other) noexcept
      : tracker_(other.tracker_), bytes_(other.bytes_) {
    other.tracker_ = nullptr;
    other.bytes_ = 0;
  }
  MemoryReservation& operator=(MemoryReservation&& other) noexcept {
    if (this != &other) {
      Reset();
      tracker_ = other.tracker_;
      bytes_ = other.bytes_;
      other.tracker_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }

  ~MemoryReservation() { Reset(); }

  /// Re-points the reservation: releases the old amount and reserves
  /// \p bytes against \p tracker (null tracker = stop accounting).
  void Reset(MemoryTracker* tracker = nullptr, uint64_t bytes = 0) {
    if (tracker_ != nullptr) tracker_->Release(bytes_);
    tracker_ = tracker;
    bytes_ = tracker != nullptr ? bytes : 0;
    if (tracker_ != nullptr) tracker_->Reserve(bytes_);
  }

  /// Adjusts the reserved amount in place (same tracker).
  void Update(uint64_t bytes) {
    if (tracker_ == nullptr) return;
    if (bytes > bytes_) {
      tracker_->Reserve(bytes - bytes_);
    } else if (bytes < bytes_) {
      tracker_->Release(bytes_ - bytes);
    }
    bytes_ = bytes;
  }

  MemoryTracker* tracker() const { return tracker_; }
  uint64_t bytes() const { return bytes_; }

 private:
  MemoryTracker* tracker_ = nullptr;
  uint64_t bytes_ = 0;
};

}  // namespace rowsort
