// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "common/status.h"

namespace rowsort {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = CodeName(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace rowsort
