// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "common/metrics_registry.h"

#include <algorithm>
#include <chrono>

#include "common/string_util.h"

namespace rowsort {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Prometheus label-value escaping: backslash, double quote, newline.
void AppendPromEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '"':
        *out += "\\\"";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        out->push_back(c);
    }
  }
}

/// JSON string escaping (quotes, backslashes, control bytes).
void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char raw : s) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(static_cast<char>(c));
    } else if (c < 0x20) {
      *out += StringFormat("\\u%04x", c);
    } else {
      out->push_back(static_cast<char>(c));
    }
  }
}

/// Renders `{key="value",...}` from sorted labels ("" when empty). Doubles
/// as the series dedupe signature: label values are escaped, so distinct
/// label sets can never render identically.
std::string RenderLabels(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (uint64_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].key;
    out += "=\"";
    AppendPromEscaped(&out, labels[i].value);
    out += "\"";
  }
  out += "}";
  return out;
}

const char* KindName(uint8_t kind) {
  switch (kind) {
    case 0:
      return "counter";
    case 1:
    case 2:
      return "gauge";
    case 3:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

MetricsRegistry::MetricsRegistry(uint64_t ring_capacity)
    : ring_capacity_(std::max<uint64_t>(ring_capacity, 2)) {}

MetricsRegistry::~MetricsRegistry() { StopCollector(); }

MetricsRegistry::Series* MetricsRegistry::GetOrCreateSeries(
    const std::string& name, const std::string& help, MetricLabels labels,
    Kind kind) {
  std::sort(labels.begin(), labels.end(),
            [](const MetricLabel& a, const MetricLabel& b) {
              return a.key < b.key;
            });
  std::string signature = RenderLabels(labels);

  std::lock_guard<std::mutex> lock(mutex_);
  Family* family = nullptr;
  for (const auto& candidate : families_) {
    if (candidate->name == name) {
      family = candidate.get();
      break;
    }
  }
  if (family == nullptr) {
    families_.push_back(std::make_unique<Family>());
    family = families_.back().get();
    family->name = name;
    family->help = help;
    family->kind = kind;
  }
  // Callback gauges share the "gauge" family kind in the exposition.
  const bool kinds_compatible =
      family->kind == kind ||
      (family->kind == Kind::kGauge && kind == Kind::kCallbackGauge) ||
      (family->kind == Kind::kCallbackGauge && kind == Kind::kGauge);
  ROWSORT_DASSERT(kinds_compatible &&
                  "metric family re-registered with a different kind");
  (void)kinds_compatible;

  for (const auto& series : family->series) {
    if (series->label_signature == signature) return series.get();
  }
  family->series.push_back(std::make_unique<Series>());
  Series* series = family->series.back().get();
  series->labels = std::move(labels);
  series->label_signature = std::move(signature);
  series->kind = kind;
  switch (kind) {
    case Kind::kCounter:
      series->counter.reset(new Counter());
      break;
    case Kind::kGauge:
      series->gauge.reset(new Gauge());
      break;
    case Kind::kCallbackGauge:
      break;  // callback installed by the caller
    case Kind::kHistogram:
      series->histogram.reset(new HistogramMetric());
      break;
  }
  series->ring.resize(ring_capacity_);
  return series;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     MetricLabels labels) {
  return GetOrCreateSeries(name, help, std::move(labels), Kind::kCounter)
      ->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 MetricLabels labels) {
  return GetOrCreateSeries(name, help, std::move(labels), Kind::kGauge)
      ->gauge.get();
}

void MetricsRegistry::RegisterCallbackGauge(const std::string& name,
                                            const std::string& help,
                                            MetricLabels labels,
                                            std::function<int64_t()> fn) {
  Series* series =
      GetOrCreateSeries(name, help, std::move(labels), Kind::kCallbackGauge);
  std::lock_guard<std::mutex> lock(rings_mutex_);
  series->callback = std::move(fn);
}

HistogramMetric* MetricsRegistry::GetHistogram(const std::string& name,
                                               const std::string& help,
                                               MetricLabels labels) {
  return GetOrCreateSeries(name, help, std::move(labels), Kind::kHistogram)
      ->histogram.get();
}

int64_t MetricsRegistry::ScalarValue(const Series& series) const {
  switch (series.kind) {
    case Kind::kCounter:
      return static_cast<int64_t>(series.counter->value());
    case Kind::kGauge:
      return series.gauge->value();
    case Kind::kCallbackGauge:
      return series.callback ? series.callback() : 0;
    case Kind::kHistogram:
      return static_cast<int64_t>(series.histogram->count());
  }
  return 0;
}

void MetricsRegistry::SampleNow() {
  const int64_t now_ns = NowNs();
  std::lock_guard<std::mutex> lock(mutex_);
  std::lock_guard<std::mutex> rings_lock(rings_mutex_);
  for (const auto& family : families_) {
    for (const auto& series : family->series) {
      MetricSample& slot = series->ring[series->ring_head % ring_capacity_];
      slot.t_ns = now_ns;
      slot.value = ScalarValue(*series);
      series->ring_head += 1;
    }
  }
  samples_taken_.fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::StartCollector(uint64_t interval_ms) {
  std::lock_guard<std::mutex> lock(collector_mutex_);
  if (collector_.joinable()) return;
  collector_stop_ = false;
  collector_running_.store(true, std::memory_order_relaxed);
  const uint64_t interval = std::max<uint64_t>(interval_ms, 1);
  collector_ = std::thread([this, interval] { CollectorLoop(interval); });
}

void MetricsRegistry::StopCollector() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(collector_mutex_);
    if (!collector_.joinable()) return;
    collector_stop_ = true;
    worker = std::move(collector_);
  }
  collector_cv_.notify_all();
  worker.join();
  collector_running_.store(false, std::memory_order_relaxed);
}

bool MetricsRegistry::collector_running() const {
  return collector_running_.load(std::memory_order_relaxed);
}

void MetricsRegistry::CollectorLoop(uint64_t interval_ms) {
  std::unique_lock<std::mutex> lock(collector_mutex_);
  while (!collector_stop_) {
    lock.unlock();
    SampleNow();
    lock.lock();
    collector_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                           [this] { return collector_stop_; });
  }
}

std::string MetricsRegistry::ExportPrometheusText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out.reserve(4096);
  for (const auto& family : families_) {
    out += "# HELP " + family->name + " ";
    // HELP text escaping: backslash and newline only (exposition format).
    for (char c : family->help) {
      if (c == '\\') {
        out += "\\\\";
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out.push_back(c);
      }
    }
    out += "\n# TYPE " + family->name + " ";
    out += KindName(static_cast<uint8_t>(family->kind));
    out += "\n";
    for (const auto& series : family->series) {
      if (series->kind == Kind::kHistogram) {
        // Cumulative le buckets in seconds over the log2-ns bucket bounds;
        // +Inf equals _count by construction.
        const DurationHistogram snap = series->histogram->Snapshot();
        uint64_t cumulative = 0;
        for (uint64_t i = 0; i < kDurationHistogramBuckets; ++i) {
          cumulative += snap.bucket(i);
          const double upper_s = static_cast<double>(
                                     DurationBucketLowerNs(i + 1)) *
                                 1e-9;
          out += family->name + "_bucket";
          std::string labels = series->label_signature;
          if (labels.empty()) {
            out += StringFormat("{le=\"%.9g\"}", upper_s);
          } else {
            labels.pop_back();  // drop '}'
            out += labels + StringFormat(",le=\"%.9g\"}", upper_s);
          }
          out += StringFormat(" %llu\n", (unsigned long long)cumulative);
        }
        out += family->name + "_bucket";
        if (series->label_signature.empty()) {
          out += "{le=\"+Inf\"}";
        } else {
          std::string labels = series->label_signature;
          labels.pop_back();
          out += labels + ",le=\"+Inf\"}";
        }
        out += StringFormat(" %llu\n", (unsigned long long)snap.count());
        out += family->name + "_sum" + series->label_signature +
               StringFormat(" %.9f\n",
                            static_cast<double>(snap.total_ns()) * 1e-9);
        out += family->name + "_count" + series->label_signature +
               StringFormat(" %llu\n", (unsigned long long)snap.count());
      } else {
        out += family->name + series->label_signature +
               StringFormat(" %lld\n", (long long)ScalarValue(*series));
      }
    }
  }
  return out;
}

std::string MetricsRegistry::ExportJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::lock_guard<std::mutex> rings_lock(rings_mutex_);
  std::string out;
  out.reserve(4096);
  out += StringFormat(
      "{\"collector\":{\"running\":%s,\"samples\":%llu,"
      "\"ring_capacity\":%llu},\"metrics\":[",
      collector_running() ? "true" : "false",
      (unsigned long long)samples_taken_.load(std::memory_order_relaxed),
      (unsigned long long)ring_capacity_);
  bool first = true;
  for (const auto& family : families_) {
    for (const auto& series : family->series) {
      if (!first) out += ",";
      first = false;
      out += "{\"name\":\"";
      AppendJsonEscaped(&out, family->name);
      out += "\",\"kind\":\"";
      out += KindName(static_cast<uint8_t>(series->kind));
      out += "\",\"labels\":{";
      for (uint64_t i = 0; i < series->labels.size(); ++i) {
        if (i > 0) out += ",";
        out += "\"";
        AppendJsonEscaped(&out, series->labels[i].key);
        out += "\":\"";
        AppendJsonEscaped(&out, series->labels[i].value);
        out += "\"";
      }
      out += "}";
      if (series->kind == Kind::kHistogram) {
        const DurationHistogram snap = series->histogram->Snapshot();
        out += StringFormat(
            ",\"count\":%llu,\"total_ns\":%llu,\"max_ns\":%llu,"
            "\"p50_ns\":%llu,\"p99_ns\":%llu",
            (unsigned long long)snap.count(),
            (unsigned long long)snap.total_ns(),
            (unsigned long long)snap.max_ns(),
            (unsigned long long)snap.QuantileUpperNs(0.50),
            (unsigned long long)snap.QuantileUpperNs(0.99));
      } else {
        out += StringFormat(",\"value\":%lld",
                            (long long)ScalarValue(*series));
      }
      // The retained ring, oldest first, as [ms offset from first retained
      // sample, value] pairs.
      const uint64_t kept = std::min(series->ring_head, ring_capacity_);
      out += ",\"series\":[";
      if (kept > 0) {
        const uint64_t begin = series->ring_head - kept;
        const int64_t base_ns =
            series->ring[begin % ring_capacity_].t_ns;
        for (uint64_t i = begin; i < series->ring_head; ++i) {
          const MetricSample& sample = series->ring[i % ring_capacity_];
          if (i != begin) out += ",";
          out += StringFormat("[%lld,%lld]",
                              (long long)((sample.t_ns - base_ns) / 1000000),
                              (long long)sample.value);
        }
      }
      out += "]}";
    }
  }
  out += "]}";
  return out;
}

}  // namespace rowsort
