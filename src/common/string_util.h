// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdarg>
#include <string>
#include <vector>

namespace rowsort {

/// printf-style formatting into a std::string.
std::string StringFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a count with thousands separators, e.g. 16777216 -> "16,777,216".
std::string FormatCount(uint64_t n);

/// Formats a duration in seconds with an adaptive unit (ns/us/ms/s).
std::string FormatDuration(double seconds);

/// Splits \p input on \p sep; empty fields are preserved.
std::vector<std::string> SplitString(const std::string& input, char sep);

}  // namespace rowsort
