// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/cancellation.h"
#include "common/histogram.h"
#include "common/status.h"

namespace rowsort {

/// \file retry.h
/// Bounded retry-with-exponential-backoff for spill I/O.
///
/// Production sorters live on shared disks that hiccup: interrupted
/// syscalls (EINTR), short writes under pressure, NFS blips. Those are
/// *transient* — the same operation succeeds a moment later — and turning
/// each one into a hard IOError makes a 10-minute external sort as fragile
/// as its flakiest millisecond. Corruption (CRC mismatch) and persistent
/// exhaustion (ENOSPC that survives every retry) are *permanent* and must
/// fail fast. The classification is the call site's: it knows whether the
/// failure mode can heal. This header provides the budget/backoff half:
///
///   RetryState retry(policy, &stats, &token);
///   while (op fails transiently) {
///     ROWSORT_RETURN_NOT_OK(retry.OnTransientError(cause, made_progress));
///   }
///
/// Progress resets the attempt budget (a stream resuming after EINTR should
/// never die because it was interrupted often, only if it is *stuck*), and
/// backoff sleeps are sliced so a cancellation or deadline cuts them short.

/// Tunables for one class of retryable operation.
struct RetryPolicy {
  /// Consecutive zero-progress failures tolerated before giving up.
  uint64_t max_attempts = 5;
  /// Backoff before the second attempt; doubles each zero-progress failure.
  uint64_t initial_backoff_us = 100;
  /// Backoff ceiling, so a long outage polls instead of stalling minutes.
  uint64_t max_backoff_us = 20'000;
};

/// Shared counters a pipeline aggregates into its metrics
/// (SortMetrics::io_retries) and profile (docs/observability.md).
/// Thread-safe.
struct RetryStats {
  std::atomic<uint64_t> retries{0};  ///< transient failures recovered from
  /// Time the pipeline spent asleep in retry backoff, one recording per
  /// backoff nap — a sort that "healed itself" shows here exactly what the
  /// healing cost (SortProfile's spill/retry_backoff node).
  AtomicDurationHistogram backoff_waits;

  uint64_t count() const { return retries.load(std::memory_order_relaxed); }
};

/// \brief Attempt budget + backoff for ONE logical operation (one WriteAll,
/// one ReadAll). Not thread-safe; make one per operation.
class RetryState {
 public:
  explicit RetryState(const RetryPolicy& policy, RetryStats* stats = nullptr,
                      const CancellationToken* token = nullptr)
      : policy_(policy), stats_(stats), token_(token),
        backoff_us_(policy.initial_backoff_us) {}

  /// Records a transient failure of the operation. Returns OK when another
  /// attempt is allowed (after backing off on zero progress); returns a
  /// permanent error derived from \p cause when the attempt budget is
  /// exhausted, or the cancellation Status when the token fired mid-backoff.
  ///
  /// \p made_progress: the operation moved some bytes before failing. That
  /// resets the budget and skips the backoff — a stream that advances is
  /// healing, not stuck.
  Status OnTransientError(const Status& cause, bool made_progress);

  /// Zero-progress failures since the last progress (diagnostics).
  uint64_t attempts_without_progress() const { return attempts_; }

 private:
  /// Sleeps the current backoff in slices, watching the token.
  Status BackOff();

  const RetryPolicy policy_;
  RetryStats* stats_;
  const CancellationToken* token_;
  uint64_t attempts_ = 0;
  uint64_t backoff_us_;
};

}  // namespace rowsort
