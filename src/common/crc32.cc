// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "common/crc32.h"

#include <array>

namespace rowsort {

namespace {

/// Table-driven byte-at-a-time CRC-32; the table is built once at startup.
/// Spill I/O is disk-bound, so a software CRC is not on the critical path.
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c >> 1) ^ ((c & 1) ? 0xEDB88320u : 0u);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32(uint32_t crc, const void* data, uint64_t size) {
  const auto& table = Table();
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (uint64_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace rowsort
