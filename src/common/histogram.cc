// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "common/histogram.h"

#include "common/string_util.h"

namespace rowsort {

std::string DurationHistogram::ToJson() const {
  std::string json = StringFormat(
      "{\"count\":%llu,\"total_ns\":%llu,\"max_ns\":%llu,\"buckets\":{",
      (unsigned long long)count_, (unsigned long long)total_ns_,
      (unsigned long long)max_ns_);
  bool first = true;
  for (uint64_t i = 0; i < kDurationHistogramBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (!first) json += ",";
    first = false;
    json += StringFormat("\"%llu\":%llu",
                         (unsigned long long)DurationBucketLowerNs(i),
                         (unsigned long long)buckets_[i]);
  }
  json += "}}";
  return json;
}

}  // namespace rowsort
