// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "common/cancellation.h"

namespace rowsort {

namespace cancel_detail {

int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace cancel_detail

Status CancelledError::ToStatus() const {
  return CancellationToken::StatusForCause(cause_);
}

Status CancellationToken::StatusForCause(CancelCause cause) {
  switch (cause) {
    case CancelCause::kDeadline:
      return Status::DeadlineExceeded("sort deadline exceeded");
    case CancelCause::kError:
      return Status::Cancelled("cancelled after a sibling thread failed");
    case CancelCause::kUser:
    case CancelCause::kNone:
      break;
  }
  return Status::Cancelled("sort cancelled");
}

void CancellationToken::LatchCause(CancelCause cause) const {
  // First writer wins so cause()/RequestNanos() stay consistent even when
  // an explicit cancel races a deadline expiry.
  uint8_t expected = static_cast<uint8_t>(CancelCause::kNone);
  if (state_->cause.compare_exchange_strong(
          expected, static_cast<uint8_t>(cause), std::memory_order_acq_rel)) {
    state_->requested_ns.store(cancel_detail::MonotonicNanos(),
                               std::memory_order_release);
  }
}

void CancellationSource::RequestCancel(CancelCause cause) {
  if (cause == CancelCause::kNone) cause = CancelCause::kUser;
  uint8_t expected = static_cast<uint8_t>(CancelCause::kNone);
  if (state_->cause.compare_exchange_strong(
          expected, static_cast<uint8_t>(cause), std::memory_order_acq_rel)) {
    state_->requested_ns.store(cancel_detail::MonotonicNanos(),
                               std::memory_order_release);
  }
}

void CancelChecker::NoteObserved() {
  bool expected = false;
  if (!observed_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return;  // another thread already recorded the latency
  }
  int64_t requested = token_.RequestNanos();
  int64_t now = cancel_detail::MonotonicNanos();
  // requested can be 0 in a narrow race (cause visible before the stamp);
  // clamp to >= 1us so "observed" is distinguishable from "never".
  int64_t latency_us = requested > 0 ? (now - requested) / 1000 : 0;
  if (latency_us < 1) latency_us = 1;
  observe_latency_us_.store(static_cast<uint64_t>(latency_us),
                            std::memory_order_relaxed);
}

}  // namespace rowsort
