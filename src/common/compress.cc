// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "common/compress.h"

#include <cstring>

#include "common/macros.h"

namespace rowsort {
namespace {

// LZ framing constants (LZ4-style): a token byte packs the literal length in
// the high nibble and the match length minus kMinMatch in the low nibble;
// nibble value 15 is extended with 255-continuation bytes. Matches reference
// a 2-byte little-endian backward offset within a 64 KiB window.
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
constexpr uint32_t kHashBits = 13;

uint32_t LzHash(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return (v * 2654435761u) >> (32 - kHashBits);
}

void EmitLength(size_t len, std::vector<uint8_t>* out) {
  while (len >= 255) {
    out->push_back(255);
    len -= 255;
  }
  out->push_back(static_cast<uint8_t>(len));
}

bool ReadLength(const uint8_t* data, size_t size, size_t* pos, size_t* len) {
  while (true) {
    if (*pos >= size) return false;
    uint8_t b = data[(*pos)++];
    *len += b;
    if (b != 255) return true;
  }
}

}  // namespace

const char* SpillCodecName(SpillCodec codec) {
  switch (codec) {
    case SpillCodec::kRaw:
      return "raw";
    case SpillCodec::kPrefix:
      return "prefix";
    case SpillCodec::kRle:
      return "rle";
    case SpillCodec::kLz:
      return "lz";
  }
  return "unknown";
}

void EncodeVarint(uint64_t value, std::vector<uint8_t>* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

bool DecodeVarint(const uint8_t* data, size_t size, size_t* pos, uint64_t* value) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift < 64; shift += 7) {
    if (*pos >= size) return false;
    uint8_t b = data[(*pos)++];
    result |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      *value = result;
      return true;
    }
  }
  return false;
}

void PrefixCompress(const uint8_t* data, uint64_t rows, uint64_t width,
                    std::vector<uint8_t>* out) {
  if (rows == 0 || width == 0) return;
  out->insert(out->end(), data, data + width);
  for (uint64_t r = 1; r < rows; ++r) {
    const uint8_t* prev = data + (r - 1) * width;
    const uint8_t* cur = data + r * width;
    uint64_t prefix = 0;
    while (prefix < width && prev[prefix] == cur[prefix]) ++prefix;
    EncodeVarint(prefix, out);
    out->insert(out->end(), cur + prefix, cur + width);
  }
}

bool PrefixDecompress(const uint8_t* data, size_t size, uint64_t rows, uint64_t width,
                      uint8_t* out) {
  if (rows == 0 || width == 0) return size == 0;
  if (size < width) return false;
  std::memcpy(out, data, width);
  size_t pos = width;
  for (uint64_t r = 1; r < rows; ++r) {
    uint64_t prefix = 0;
    if (!DecodeVarint(data, size, &pos, &prefix)) return false;
    if (prefix > width) return false;
    uint64_t suffix = width - prefix;
    if (size - pos < suffix) return false;
    uint8_t* cur = out + r * width;
    std::memcpy(cur, cur - width, prefix);
    std::memcpy(cur + prefix, data + pos, suffix);
    pos += suffix;
  }
  return pos == size;
}

void RleCompress(const uint8_t* data, uint64_t rows, uint64_t width,
                 std::vector<uint8_t>* out) {
  if (rows == 0 || width == 0) return;
  uint64_t run_start = 0;
  for (uint64_t r = 1; r <= rows; ++r) {
    if (r == rows ||
        std::memcmp(data + r * width, data + run_start * width, width) != 0) {
      EncodeVarint(r - run_start, out);
      out->insert(out->end(), data + run_start * width, data + (run_start + 1) * width);
      run_start = r;
    }
  }
}

bool RleDecompress(const uint8_t* data, size_t size, uint64_t rows, uint64_t width,
                   uint8_t* out) {
  if (rows == 0 || width == 0) return size == 0;
  size_t pos = 0;
  uint64_t produced = 0;
  while (produced < rows) {
    uint64_t run = 0;
    if (!DecodeVarint(data, size, &pos, &run)) return false;
    if (run == 0 || run > rows - produced) return false;
    if (size - pos < width) return false;
    const uint8_t* row = data + pos;
    pos += width;
    for (uint64_t i = 0; i < run; ++i) {
      std::memcpy(out + (produced + i) * width, row, width);
    }
    produced += run;
  }
  return pos == size;
}

void LzCompress(const uint8_t* data, size_t size, std::vector<uint8_t>* out) {
  uint32_t table[1u << kHashBits];
  std::memset(table, 0xff, sizeof(table));
  size_t literal_start = 0;
  size_t pos = 0;
  // Stop matching kMinMatch+1 bytes from the end so the hash read and the
  // final literal run are always in bounds.
  size_t match_limit = size > kMinMatch + 1 ? size - kMinMatch - 1 : 0;
  while (pos < match_limit) {
    uint32_t h = LzHash(data + pos);
    uint32_t cand = table[h];
    table[h] = static_cast<uint32_t>(pos);
    if (cand != 0xffffffffu && pos - cand <= kMaxOffset &&
        std::memcmp(data + cand, data + pos, kMinMatch) == 0) {
      size_t match_len = kMinMatch;
      while (pos + match_len < size && data[cand + match_len] == data[pos + match_len]) {
        ++match_len;
      }
      size_t literals = pos - literal_start;
      uint8_t token = static_cast<uint8_t>(
          (literals >= 15 ? 15u : literals) << 4 |
          (match_len - kMinMatch >= 15 ? 15u : match_len - kMinMatch));
      out->push_back(token);
      if (literals >= 15) EmitLength(literals - 15, out);
      out->insert(out->end(), data + literal_start, data + pos);
      uint16_t offset = static_cast<uint16_t>(pos - cand);
      out->push_back(static_cast<uint8_t>(offset & 0xff));
      out->push_back(static_cast<uint8_t>(offset >> 8));
      if (match_len - kMinMatch >= 15) EmitLength(match_len - kMinMatch - 15, out);
      pos += match_len;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  // Final sequence: literals only, token match nibble 0 with no offset.
  size_t literals = size - literal_start;
  uint8_t token = static_cast<uint8_t>((literals >= 15 ? 15u : literals) << 4);
  out->push_back(token);
  if (literals >= 15) EmitLength(literals - 15, out);
  out->insert(out->end(), data + literal_start, data + size);
}

bool LzDecompress(const uint8_t* data, size_t size, uint8_t* out, size_t out_size) {
  size_t pos = 0;
  size_t produced = 0;
  while (pos < size) {
    uint8_t token = data[pos++];
    size_t literals = token >> 4;
    if (literals == 15 && !ReadLength(data, size, &pos, &literals)) return false;
    if (literals > size - pos || literals > out_size - produced) return false;
    std::memcpy(out + produced, data + pos, literals);
    pos += literals;
    produced += literals;
    if (pos == size) {
      // Final literal-only sequence: the match nibble must be empty.
      return (token & 0x0f) == 0 && produced == out_size;
    }
    if (size - pos < 2) return false;
    size_t offset = static_cast<size_t>(data[pos]) | static_cast<size_t>(data[pos + 1]) << 8;
    pos += 2;
    if (offset == 0 || offset > produced) return false;
    size_t match_len = (token & 0x0f);
    if (match_len == 15 && !ReadLength(data, size, &pos, &match_len)) return false;
    match_len += kMinMatch;
    if (match_len > out_size - produced) return false;
    // Byte-wise copy: overlapping matches (offset < match_len) replicate.
    const uint8_t* src = out + produced - offset;
    for (size_t i = 0; i < match_len; ++i) out[produced + i] = src[i];
    produced += match_len;
  }
  return produced == out_size;
}

}  // namespace rowsort
