// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <memory>

#include "common/status.h"

namespace rowsort {

/// \file cancellation.h
/// Cooperative cancellation and deadlines for the sorting pipeline.
///
/// An interactive engine aborts queries all the time — users hit Ctrl-C,
/// schedulers enforce per-query time budgets, and a failure on one worker
/// thread should stop its siblings from finishing work nobody will read.
/// The pattern here is the usual source/token split:
///
///   CancellationSource source(Deadline::AfterMillis(500));
///   config.cancellation = source.token();      // copied freely, thread-safe
///   ... from any thread: source.RequestCancel();
///
/// Long-running loops poll the token at *block* granularity (a few thousand
/// rows per check — one relaxed atomic load on the fast path, never a
/// per-row cost) and unwind with Status::Cancelled or
/// Status::DeadlineExceeded, which the sort pipeline records through its
/// sticky-error path so every sibling thread stops promptly and all spill
/// files are still cleaned up.

/// Why a long-running operation was told to stop.
enum class CancelCause : uint8_t {
  kNone = 0,
  kUser,      ///< explicit RequestCancel() — e.g. a user abort
  kDeadline,  ///< the source's deadline expired
  kError,     ///< a sibling thread failed; finishing the work is pointless
};

/// \brief A point on the monotonic clock after which work should stop.
///
/// Built on steady_clock so wall-clock adjustments (NTP, DST) can neither
/// fire a deadline early nor stall it forever. Default-constructed deadlines
/// are infinite.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Infinite — never expires.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }
  static Deadline At(Clock::time_point when) { return Deadline(when); }
  static Deadline AfterMicros(int64_t us) {
    return Deadline(Clock::now() + std::chrono::microseconds(us));
  }
  static Deadline AfterMillis(int64_t ms) {
    return Deadline(Clock::now() + std::chrono::milliseconds(ms));
  }

  bool IsInfinite() const { return infinite_; }
  bool Expired() const { return !infinite_ && Clock::now() >= when_; }

  /// Microseconds until expiry; negative once expired, INT64_MAX when
  /// infinite. Useful for bounding sleeps (retry backoff never naps past
  /// the deadline).
  int64_t RemainingMicros() const {
    if (infinite_) return INT64_MAX;
    return std::chrono::duration_cast<std::chrono::microseconds>(when_ -
                                                                 Clock::now())
        .count();
  }

  Clock::time_point when() const { return when_; }

 private:
  explicit Deadline(Clock::time_point when) : when_(when), infinite_(false) {}

  Clock::time_point when_{};
  bool infinite_ = true;
};

namespace cancel_detail {

/// Shared flag between one source and its tokens. `cause` is written once
/// (first cancel wins); `requested_ns` records when that happened on the
/// steady clock so observers can report their reaction latency.
struct SharedState {
  explicit SharedState(Deadline d) : deadline(d) {}
  SharedState(Deadline d, std::shared_ptr<SharedState> link)
      : deadline(d), linked(std::move(link)) {}
  std::atomic<uint8_t> cause{static_cast<uint8_t>(CancelCause::kNone)};
  std::atomic<int64_t> requested_ns{0};
  Deadline deadline;
  /// Optional upstream state (e.g. a caller-supplied token when the service
  /// wraps a request in its own per-query source). A cancel observed on the
  /// linked state propagates into this one on the next poll, first cause
  /// wins. Immutable after construction, so reads need no synchronization.
  std::shared_ptr<SharedState> linked;
};

int64_t MonotonicNanos();

}  // namespace cancel_detail

/// \brief Thrown by ThrowIfCancelled() to unwind deep loops (radix passes,
/// merge inner loops) that have no Status return channel; converted back to
/// a Status at the pipeline entry points, exactly like std::bad_alloc.
class CancelledError : public std::exception {
 public:
  explicit CancelledError(CancelCause cause) : cause_(cause) {}
  const char* what() const noexcept override {
    return cause_ == CancelCause::kDeadline ? "deadline exceeded"
                                            : "operation cancelled";
  }
  CancelCause cause() const { return cause_; }
  /// The Status this unwind stands for.
  Status ToStatus() const;

 private:
  CancelCause cause_;
};

/// \brief Cheap, copyable observer of a CancellationSource.
///
/// A default-constructed token can never be cancelled and costs one branch
/// per check, so code paths that were given no token pay ~nothing. All
/// methods are thread-safe.
class CancellationToken {
 public:
  CancellationToken() = default;

  /// True when attached to a source (i.e. cancellation is possible at all).
  bool CanBeCancelled() const { return state_ != nullptr; }

  /// True once the source was cancelled or its deadline has passed. The
  /// first observer of an expired deadline latches kDeadline as the cause,
  /// so the reported cause never flickers.
  bool IsCancelled() const {
    if (state_ == nullptr) return false;
    if (state_->cause.load(std::memory_order_acquire) !=
        static_cast<uint8_t>(CancelCause::kNone)) {
      return true;
    }
    if (state_->deadline.Expired()) {
      LatchCause(CancelCause::kDeadline);
      return true;
    }
    if (state_->linked != nullptr) {
      CancellationToken upstream(state_->linked);
      if (upstream.IsCancelled()) {
        LatchCause(upstream.cause());
        return true;
      }
    }
    return false;
  }

  /// Why the operation was cancelled (kNone while still running).
  CancelCause cause() const {
    if (state_ == nullptr) return CancelCause::kNone;
    return static_cast<CancelCause>(state_->cause.load(std::memory_order_acquire));
  }

  /// OK while running; Status::Cancelled / Status::DeadlineExceeded once
  /// cancelled. The polling primitive for code with a Status channel.
  Status CheckForCancellation() const {
    if (!IsCancelled()) return Status::OK();
    return StatusForCause(cause());
  }

  /// Unwinds with CancelledError once cancelled; the polling primitive for
  /// deep loops without a Status channel.
  void ThrowIfCancelled() const {
    if (IsCancelled()) throw CancelledError(cause());
  }

  /// Steady-clock nanosecond stamp of the cancel request (0 while running);
  /// lets observers measure their own reaction time.
  int64_t RequestNanos() const {
    return state_ == nullptr
               ? 0
               : state_->requested_ns.load(std::memory_order_acquire);
  }

  const Deadline& deadline() const {
    static const Deadline kInfinite;
    return state_ == nullptr ? kInfinite : state_->deadline;
  }

  /// The Status a given cause maps to.
  static Status StatusForCause(CancelCause cause);

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<cancel_detail::SharedState> s)
      : state_(std::move(s)) {}

  void LatchCause(CancelCause cause) const;

  std::shared_ptr<cancel_detail::SharedState> state_;
};

/// \brief Owner side: hands out tokens and delivers the cancel signal.
class CancellationSource {
 public:
  /// A source with no deadline — cancels only via RequestCancel().
  CancellationSource()
      : state_(std::make_shared<cancel_detail::SharedState>(Deadline())) {}
  /// A source whose tokens also trip when \p deadline expires.
  explicit CancellationSource(Deadline deadline)
      : state_(std::make_shared<cancel_detail::SharedState>(deadline)) {}
  /// A source whose tokens additionally observe \p external: the first of
  /// {RequestCancel, deadline expiry, external cancel} to fire wins and its
  /// cause is latched. This is how the service composes a caller-supplied
  /// token with its own per-request deadline without a bridge thread.
  CancellationSource(Deadline deadline, const CancellationToken& external)
      : state_(std::make_shared<cancel_detail::SharedState>(deadline,
                                                            external.state_)) {}

  /// Signals every token. Idempotent; the first cause wins.
  void RequestCancel(CancelCause cause = CancelCause::kUser);

  bool cancel_requested() const {
    return state_->cause.load(std::memory_order_acquire) !=
           static_cast<uint8_t>(CancelCause::kNone);
  }

  CancellationToken token() const { return CancellationToken(state_); }

 private:
  std::shared_ptr<cancel_detail::SharedState> state_;
};

/// \brief Per-pipeline wrapper that counts checks and measures how long the
/// pipeline took to notice a cancellation (SortMetrics::cancel_checks /
/// time_to_cancel_us). Shared by all of a sort's threads; methods are
/// thread-safe, non-copyable.
class CancelChecker {
 public:
  CancelChecker() = default;
  void Reset(CancellationToken token) { token_ = std::move(token); }

  bool enabled() const { return token_.CanBeCancelled(); }
  const CancellationToken& token() const { return token_; }

  /// One cooperative check; true once cancelled. The first observation
  /// across all threads records the request->observation latency.
  bool Check() {
    if (!token_.CanBeCancelled()) return false;
    checks_.fetch_add(1, std::memory_order_relaxed);
    if (!token_.IsCancelled()) return false;
    NoteObserved();
    return true;
  }

  /// Check() with a Status result.
  Status CheckStatus() {
    if (!Check()) return Status::OK();
    return CancellationToken::StatusForCause(token_.cause());
  }

  /// Check() that unwinds via CancelledError (for loops without a Status
  /// channel; entry points convert back).
  void ThrowIfCancelled() {
    if (Check()) throw CancelledError(token_.cause());
  }

  uint64_t checks() const { return checks_.load(std::memory_order_relaxed); }

  /// Microseconds between the cancel request and the pipeline's first
  /// observation of it; 0 until a cancellation has been observed.
  uint64_t time_to_cancel_us() const {
    return observe_latency_us_.load(std::memory_order_relaxed);
  }

 private:
  void NoteObserved();

  CancellationToken token_;
  std::atomic<uint64_t> checks_{0};
  std::atomic<uint64_t> observe_latency_us_{0};
  std::atomic<bool> observed_{false};
};

/// How many rows a tight loop may process between cooperative checks. Small
/// enough that even wide rows stay well under a millisecond per interval,
/// large enough that the relaxed atomic check cost vanishes.
constexpr uint64_t kCancelCheckRows = 4096;

}  // namespace rowsort
