// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>

#include "common/macros.h"

namespace rowsort {

/// \brief Deterministic xoshiro256** pseudo-random generator.
///
/// All workload generators take an explicit seed so that every experiment in
/// this repository is reproducible run-to-run and machine-to-machine
/// (std::mt19937 distributions are not guaranteed identical across standard
/// library implementations; this generator is self-contained).
class Random {
 public:
  /// Seeds the generator with splitmix64 expansion of \p seed.
  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    uint64_t x = seed;
    for (auto& s : state_) {
      // splitmix64 step
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  /// Next 64 uniformly distributed bits.
  uint64_t Next64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Next 32 uniformly distributed bits.
  uint32_t Next32() { return static_cast<uint32_t>(Next64() >> 32); }

  /// Uniform integer in [0, bound). \p bound must be > 0.
  uint64_t Uniform(uint64_t bound) {
    ROWSORT_DASSERT(bound > 0);
    // Lemire's nearly-divisionless bounded generation.
    unsigned __int128 m =
        static_cast<unsigned __int128>(Next64()) * static_cast<unsigned __int128>(bound);
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float UniformFloat(float lo, float hi) {
    return lo + static_cast<float>(NextDouble()) * (hi - lo);
  }

  /// Bernoulli trial with success probability \p p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Fisher-Yates shuffle of \p data[0..n).
  template <typename T>
  void Shuffle(T* data, uint64_t n) {
    for (uint64_t i = n; i > 1; --i) {
      uint64_t j = Uniform(i);
      T tmp = data[i - 1];
      data[i - 1] = data[j];
      data[j] = tmp;
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace rowsort
