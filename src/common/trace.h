// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace rowsort {

/// \file trace.h
/// Low-overhead span tracing for the sorting pipeline.
///
/// The paper argues from phase-level evidence (Fig. 11's sink / run-sort /
/// merge decomposition); this tracer makes the live engine emit the same
/// decomposition as Chrome/Perfetto trace-event JSON, per thread, span by
/// span, so a regression in any stage is visible on a timeline instead of
/// requiring a rebuilt bench.
///
/// Design constraints, in order:
///  1. Disabled tracing must cost ~nothing. Call sites hold a Tracer*
///     (usually from SortEngineConfig::trace); a null pointer short-circuits
///     in the TraceSpan constructor, and a non-null but disabled tracer is
///     one relaxed atomic load. No clock is read unless a span will be kept.
///  2. Recording must never block the pipeline. Each thread writes into its
///     own fixed-capacity ring buffer — no locks, no allocation after the
///     buffer exists; when the ring wraps, the oldest events are dropped
///     (and counted) rather than stalling the sorter.
///  3. Export is offline. ToChromeTraceJson() snapshots all rings; call it
///     after the traced operation finished (the pipeline's barriers order
///     all recordings before the caller regains control).
///
/// Usage:
///   Tracer tracer;
///   config.trace = &tracer;
///   ... run the sort ...
///   tracer.WriteChromeTrace("sort.trace.json");   // open in Perfetto
///
/// Span names/categories must be string literals (or otherwise outlive the
/// tracer): events store the pointers, never copies.

/// One recorded event in a thread's ring.
struct TraceEvent {
  enum class Kind : uint8_t { kSpan, kInstant, kCounter };

  const char* name = nullptr;      ///< static string, not owned
  const char* category = nullptr;  ///< static string, not owned
  int64_t start_ns = 0;            ///< steady-clock stamp
  int64_t duration_ns = 0;         ///< kSpan only
  int64_t value = 0;               ///< kCounter only
  /// Query/engine scope the event belongs to (Tracer::CurrentScope() at
  /// record time; 0 = unscoped). Distinct scopes export as distinct Perfetto
  /// processes, so concurrent queries sharing one tracer (and one thread
  /// pool) never interleave on a track.
  uint64_t scope = 0;
  uint32_t thread_ordinal = 0;     ///< filled by Snapshot()
  uint32_t depth = 0;              ///< span nesting depth at record time
  Kind kind = Kind::kSpan;
};

/// \brief Per-thread ring-buffer span tracer with Chrome trace export.
///
/// Thread-safe: any thread may record; the first record from a new thread
/// registers its ring under a mutex, every later record is lock-free.
class Tracer {
 public:
  /// \p events_per_thread is the ring capacity of each thread's buffer
  /// (rounded up to a power of two). Memory is allocated lazily, on a
  /// thread's first record.
  explicit Tracer(uint64_t events_per_thread = 1 << 16);
  ~Tracer();
  ROWSORT_DISALLOW_COPY_AND_MOVE(Tracer);

  /// Runtime switch. Checked with one relaxed load on every record path, so
  /// a disabled tracer can stay attached to a config at ~zero cost.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Steady-clock nanoseconds (the time base of every event).
  static int64_t NowNanos() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// Process-unique, nonzero scope id. The service stamps one per query; a
  /// standalone engine takes one per sort (docs/observability.md, "Stitched
  /// cross-query traces").
  static uint64_t NextScopeId();

  /// The calling thread's active scope (0 = unscoped). Every recorded event
  /// is stamped with it; TraceScopeGuard sets it, ThreadPool tasks and
  /// IoWorker jobs inherit their submitter's value.
  static uint64_t CurrentScope();

  /// Records a completed span [start_ns, end_ns) on the calling thread.
  void RecordSpan(const char* name, const char* category, int64_t start_ns,
                  int64_t end_ns);

  /// Records a zero-duration marker on the calling thread.
  void RecordInstant(const char* name, const char* category);

  /// Records a named counter sample (rendered as a counter track).
  void RecordCounter(const char* name, int64_t value);

  /// All retained events, oldest-first per thread, with thread ordinals
  /// attached. Call after the traced work has completed.
  std::vector<TraceEvent> Snapshot() const;

  /// Events lost to ring wraparound across all threads.
  uint64_t dropped_events() const;

  /// Number of threads that have recorded at least one event.
  uint64_t thread_count() const;

  /// Chrome trace-event JSON ({"traceEvents":[...]}), loadable by Perfetto
  /// (ui.perfetto.dev) and chrome://tracing. Spans become "X" events with
  /// microsecond timestamps on one track per recording thread.
  std::string ToChromeTraceJson() const;

  /// Writes ToChromeTraceJson() to \p path.
  Status WriteChromeTrace(const std::string& path) const;

 private:
  friend class TraceSpan;

  struct ThreadBuffer {
    explicit ThreadBuffer(uint64_t capacity)
        : ring(capacity), mask(capacity - 1) {}
    std::vector<TraceEvent> ring;
    const uint64_t mask;
    /// Monotonic write index; slot = head & mask. Published with release so
    /// Snapshot() (acquire) sees completed slots.
    std::atomic<uint64_t> head{0};
    uint32_t ordinal = 0;
    uint32_t depth = 0;  ///< live span nesting; touched only by the owner
    std::thread::id owner;
  };

  /// The calling thread's buffer (registered on first use).
  ThreadBuffer* Buffer();
  /// Stamps the thread's current scope on \p event and publishes it.
  void Push(ThreadBuffer* buf, TraceEvent event);

  const uint64_t capacity_;   ///< power of two
  const uint64_t tracer_id_;  ///< process-unique, for the TLS cache
  std::atomic<bool> enabled_{true};
  mutable std::mutex mutex_;  ///< guards buffers_ registration and export
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// \brief RAII span: records [construction, destruction) on the calling
/// thread when the tracer is attached and enabled.
///
///   { TraceSpan span(config.trace, "merge.slice", "merge"); ...work... }
///
/// With a null tracer the constructor is a pointer test; with a disabled
/// tracer, one relaxed load. Only a live span reads the clock.
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, const char* name, const char* category = "sort")
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        name_(name), category_(category) {
    if (tracer_ != nullptr) {
      buffer_ = tracer_->Buffer();
      ++buffer_->depth;
      start_ns_ = Tracer::NowNanos();
    }
  }

  ~TraceSpan() {
    if (tracer_ != nullptr) {
      int64_t end_ns = Tracer::NowNanos();
      --buffer_->depth;
      TraceEvent event;
      event.name = name_;
      event.category = category_;
      event.start_ns = start_ns_;
      event.duration_ns = end_ns - start_ns_;
      event.depth = buffer_->depth;
      event.kind = TraceEvent::Kind::kSpan;
      tracer_->Push(buffer_, event);
    }
  }

  ROWSORT_DISALLOW_COPY_AND_MOVE(TraceSpan);

  /// Nanoseconds since the span began; 0 when not recording.
  int64_t ElapsedNanos() const {
    return tracer_ != nullptr ? Tracer::NowNanos() - start_ns_ : 0;
  }

 private:
  Tracer* tracer_;
  Tracer::ThreadBuffer* buffer_ = nullptr;
  const char* name_;
  const char* category_;
  int64_t start_ns_ = 0;
};

/// \brief RAII scope marker: events recorded on this thread while the guard
/// lives are stamped with \p scope (a query id from Tracer::NextScopeId()),
/// restoring the previous scope on destruction. A scope of 0 keeps the
/// current value — "inherit" composes for nested operators: the service sets
/// the query scope, inner sorts pass 0 and stay inside it. Two thread-local
/// stores; safe (and nearly free) to use with no tracer attached at all.
class TraceScopeGuard {
 public:
  explicit TraceScopeGuard(uint64_t scope);
  ~TraceScopeGuard();
  ROWSORT_DISALLOW_COPY_AND_MOVE(TraceScopeGuard);

 private:
  uint64_t previous_;
};

}  // namespace rowsort
