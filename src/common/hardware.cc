// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "common/hardware.h"

#include <fstream>
#include <sstream>
#include <thread>

#include "common/string_util.h"

namespace rowsort {

namespace {

std::string ReadFirstLine(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (in && std::getline(in, line)) return line;
  return {};
}

// Parses sysfs cache size strings like "32K" / "1024K" / "33M".
uint64_t ParseCacheSize(const std::string& text) {
  if (text.empty()) return 0;
  char unit = text.back();
  uint64_t value = 0;
  try {
    value = std::stoull(text);
  } catch (...) {
    return 0;
  }
  if (unit == 'K' || unit == 'k') return value * 1024;
  if (unit == 'M' || unit == 'm') return value * 1024 * 1024;
  return value;
}

uint64_t ReadCacheLevel(int index) {
  std::string base =
      StringFormat("/sys/devices/system/cpu/cpu0/cache/index%d/", index);
  return ParseCacheSize(ReadFirstLine(base + "size"));
}

}  // namespace

std::string HardwareInfo::ToString() const {
  std::ostringstream out;
  out << "CPU:        " << (cpu_model.empty() ? "unknown" : cpu_model) << "\n";
  out << "Cores:      " << logical_cores << " logical\n";
  out << "Memory:     " << FormatCount(total_memory_bytes >> 20) << " MiB\n";
  out << "L1d cache:  " << (l1d_cache_bytes >> 10) << " KiB\n";
  out << "L2 cache:   " << (l2_cache_bytes >> 10) << " KiB\n";
  out << "L3 cache:   " << (l3_cache_bytes >> 10) << " KiB\n";
  out << "Cache line: " << cache_line_bytes << " B\n";
  out << "OS:         " << (os_version.empty() ? "unknown" : os_version);
  return out.str();
}

HardwareInfo DetectHardware() {
  HardwareInfo info;
  info.logical_cores = static_cast<int>(std::thread::hardware_concurrency());

  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (cpuinfo && std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      size_t colon = line.find(':');
      if (colon != std::string::npos) {
        info.cpu_model = line.substr(colon + 2);
      }
      break;
    }
  }

  std::ifstream meminfo("/proc/meminfo");
  while (meminfo && std::getline(meminfo, line)) {
    if (line.rfind("MemTotal:", 0) == 0) {
      std::istringstream fields(line.substr(9));
      uint64_t kb = 0;
      fields >> kb;
      info.total_memory_bytes = kb * 1024;
      break;
    }
  }

  // sysfs cache indices: 0 = L1d, 1 = L1i, 2 = L2, 3 = L3 on most x86.
  info.l1d_cache_bytes = ReadCacheLevel(0);
  info.l2_cache_bytes = ReadCacheLevel(2);
  info.l3_cache_bytes = ReadCacheLevel(3);
  std::string coherency = ReadFirstLine(
      "/sys/devices/system/cpu/cpu0/cache/index0/coherency_line_size");
  if (!coherency.empty()) {
    try {
      info.cache_line_bytes = std::stoull(coherency);
    } catch (...) {
    }
  }

  info.os_version = ReadFirstLine("/proc/version");
  return info;
}

}  // namespace rowsort
