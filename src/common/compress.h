// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rowsort {

/// Per-section codec tags for the v3 external-run format. The tag is stored
/// as a single byte in the section header, so the values are part of the
/// on-disk format and must never be renumbered.
enum class SpillCodec : uint8_t {
  kRaw = 0,     ///< stored bytes == raw bytes, no transform
  kPrefix = 1,  ///< shared-prefix delta over sorted fixed-width rows
  kRle = 2,     ///< run-length over identical fixed-width rows
  kLz = 3,      ///< byte-oriented LZ with 64 KiB window
};

const char* SpillCodecName(SpillCodec codec);

/// LEB128 varint helpers shared by the codecs. EncodeVarint appends to
/// \p out; DecodeVarint advances \p pos and returns false on truncation or
/// on encodings longer than 10 bytes.
void EncodeVarint(uint64_t value, std::vector<uint8_t>* out);
bool DecodeVarint(const uint8_t* data, size_t size, size_t* pos, uint64_t* value);

/// Shared-prefix delta ("frame of reference" over the lexicographic order)
/// for a section of \p rows fixed-width rows of \p width bytes each. Row 0
/// is stored verbatim; every later row stores the varint length of the
/// prefix it shares with its predecessor followed by the remaining suffix
/// bytes. Effective exactly when rows are sorted by memcmp, which spill
/// blocks are by construction.
void PrefixCompress(const uint8_t* data, uint64_t rows, uint64_t width,
                    std::vector<uint8_t>* out);

/// Run-length encoding over identical adjacent fixed-width rows: a varint
/// run length followed by one copy of the row, repeated until \p rows are
/// covered. Wins on duplicate-heavy payloads where entire rows repeat.
void RleCompress(const uint8_t* data, uint64_t rows, uint64_t width,
                 std::vector<uint8_t>* out);

/// Greedy byte-oriented LZ (hash-chain of 4-byte sequences, 64 KiB offset
/// window, LZ4-style token framing). General-purpose fallback for payload
/// and string sections that repeat at byte granularity rather than row
/// granularity. \p out is appended to, never shrunk.
void LzCompress(const uint8_t* data, size_t size, std::vector<uint8_t>* out);

/// Decompressors fill exactly [out, out + out_size) and return false unless
/// the input decodes to precisely out_size bytes while consuming precisely
/// \p size input bytes. Every read is bounds-checked so corrupt or
/// truncated sections fail cleanly instead of over-reading.
bool PrefixDecompress(const uint8_t* data, size_t size, uint64_t rows, uint64_t width,
                      uint8_t* out);
bool RleDecompress(const uint8_t* data, size_t size, uint64_t rows, uint64_t width,
                   uint8_t* out);
bool LzDecompress(const uint8_t* data, size_t size, uint8_t* out, size_t out_size);

}  // namespace rowsort
