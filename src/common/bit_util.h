// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>

namespace rowsort {

/// \brief Bit/byte manipulation helpers shared by key normalization and the
/// radix sorts.
namespace bit_util {

/// Byte-swaps a value so the most significant byte comes first in memory on a
/// little-endian machine (paper Fig. 7: order-preserving integer encoding).
inline uint16_t ByteSwap(uint16_t v) { return __builtin_bswap16(v); }
inline uint32_t ByteSwap(uint32_t v) { return __builtin_bswap32(v); }
inline uint64_t ByteSwap(uint64_t v) { return __builtin_bswap64(v); }

/// Next power of two >= v (v >= 1).
inline uint64_t NextPowerOfTwo(uint64_t v) { return std::bit_ceil(v); }

/// floor(log2(v)) for v >= 1.
inline int Log2Floor(uint64_t v) { return 63 - std::countl_zero(v); }

/// Rounds \p value up to a multiple of \p factor (a power of two).
inline uint64_t AlignValue(uint64_t value, uint64_t factor = 8) {
  return (value + factor - 1) & ~(factor - 1);
}

/// True when \p value is a multiple of \p factor (a power of two).
inline bool IsAligned(uint64_t value, uint64_t factor) {
  return (value & (factor - 1)) == 0;
}

/// Loads a potentially unaligned T from \p ptr.
template <typename T>
inline T LoadUnaligned(const void* ptr) {
  T value;
  std::memcpy(&value, ptr, sizeof(T));
  return value;
}

/// Stores T to a potentially unaligned \p ptr.
template <typename T>
inline void StoreUnaligned(void* ptr, T value) {
  std::memcpy(ptr, &value, sizeof(T));
}

}  // namespace bit_util
}  // namespace rowsort
