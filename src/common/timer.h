// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <chrono>
#include <cstdint>

namespace rowsort {

/// \brief Monotonic wall-clock stopwatch used by the benchmark harnesses.
class Timer {
 public:
  Timer() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Nanoseconds elapsed since construction or the last Restart().
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rowsort
