// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/macros.h"

namespace rowsort {

/// \file metrics_registry.h
/// Wait-free service metrics with Prometheus and JSON export
/// (docs/observability.md, "Service telemetry").
///
/// Design constraints, in order:
///  1. Recording must be wait-free. Handles (Counter / Gauge / HistogramMetric)
///     are relaxed atomics owned by the registry; the hot paths of the
///     admission loop and the engine touch nothing else — no locks, no
///     allocation, no string handling.
///  2. Registration is rare and may lock. GetCounter()/GetGauge()/
///     GetHistogram() dedupe on (name, sorted labels) under a mutex and hand
///     back a stable pointer that lives as long as the registry; callers
///     cache it (the service keeps one handle per (tenant, op_class)).
///  3. History is sampled, not recorded. A background collector thread (or an
///     explicit SampleNow()) copies every scalar series into a fixed-size
///     time-series ring at a low rate, so dashboards get recent history
///     without the hot path paying for it.
///
/// Export formats:
///  - ExportPrometheusText(): the Prometheus exposition format ("# HELP" /
///    "# TYPE" / samples with escaped labels; histograms as cumulative
///    seconds-based le buckets + _sum/_count), scrapeable or dumpable.
///  - ExportJson(): current values plus the sampled time-series rings.

/// One metric label, e.g. {"tenant", "acme"}. Values are copied at
/// registration; the hot path never sees them.
struct MetricLabel {
  std::string key;
  std::string value;
};

using MetricLabels = std::vector<MetricLabel>;

/// Monotone counter handle. Wait-free; share freely across threads.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  ROWSORT_DISALLOW_COPY_AND_MOVE(Counter);
  std::atomic<uint64_t> value_{0};
};

/// Up/down gauge handle (queue depths, resident bytes). Wait-free.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  ROWSORT_DISALLOW_COPY_AND_MOVE(Gauge);
  std::atomic<int64_t> value_{0};
};

/// Duration histogram handle: log2 nanosecond buckets (histogram.h),
/// exported to Prometheus as cumulative seconds-based le buckets.
class HistogramMetric {
 public:
  void RecordNs(uint64_t ns) { hist_.Record(ns); }
  DurationHistogram Snapshot() const { return hist_.Snapshot(); }
  uint64_t count() const { return hist_.count(); }

 private:
  friend class MetricsRegistry;
  HistogramMetric() = default;
  ROWSORT_DISALLOW_COPY_AND_MOVE(HistogramMetric);
  AtomicDurationHistogram hist_;
};

/// One sampled point of a scalar series' time-series ring.
struct MetricSample {
  int64_t t_ns = 0;   ///< steady-clock stamp (Tracer::NowNanos() base)
  int64_t value = 0;  ///< counter/gauge value, histogram count
};

/// \brief Registry of named metrics with label sets, a sampling collector,
/// and Prometheus / JSON export. See the file comment for the contract.
///
/// A metric *family* is every series sharing one name (same kind, same help
/// text); a *series* is one (name, labels) pair. Export order is
/// deterministic: families in first-registration order, series within a
/// family in registration order — golden tests depend on this.
class MetricsRegistry {
 public:
  /// \p ring_capacity is the number of retained samples per series (the
  /// time-series window is ring_capacity * collector interval).
  explicit MetricsRegistry(uint64_t ring_capacity = 128);
  /// Stops the collector thread, if running.
  ~MetricsRegistry();
  ROWSORT_DISALLOW_COPY_AND_MOVE(MetricsRegistry);

  /// Returns the counter for (\p name, \p labels), creating it on first use.
  /// \p help is the family help text (first registration wins). The handle
  /// stays valid for the registry's lifetime.
  Counter* GetCounter(const std::string& name, const std::string& help,
                      MetricLabels labels = {});

  /// Same contract for an up/down gauge.
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  MetricLabels labels = {});

  /// Registers a callback gauge: \p fn is evaluated on the collector thread
  /// at each sample and by the exporters — never on a hot path. Use for
  /// values that already live elsewhere (memory-tracker occupancy, pool
  /// queue depth). \p fn must stay callable for the registry's lifetime.
  /// Re-registering the same (name, labels) replaces the callback.
  void RegisterCallbackGauge(const std::string& name, const std::string& help,
                             MetricLabels labels,
                             std::function<int64_t()> fn);

  /// Same contract for a duration histogram (recorded in nanoseconds,
  /// exported in seconds).
  HistogramMetric* GetHistogram(const std::string& name,
                                const std::string& help,
                                MetricLabels labels = {});

  /// Starts the background collector sampling every \p interval_ms
  /// milliseconds (clamped to >= 1). No-op when already running.
  void StartCollector(uint64_t interval_ms);
  /// Stops and joins the collector thread. No-op when not running.
  void StopCollector();
  bool collector_running() const;

  /// One synchronous sampling pass: every scalar series (counters, gauges,
  /// callback gauges, histogram counts) appends its current value to its
  /// time-series ring. The collector thread calls this; tests and one-shot
  /// dumps may call it directly.
  void SampleNow();

  /// Prometheus text exposition (version 0.0.4): HELP/TYPE per family,
  /// escaped label values, histograms as cumulative le buckets in seconds
  /// plus _sum / _count. Safe to call concurrently with recording.
  std::string ExportPrometheusText() const;

  /// JSON: {"collector":{...},"metrics":[{name,labels,kind,value...,
  /// "series":[[t_ms,value],...]}]} with timestamps in milliseconds
  /// relative to the first retained sample of each series.
  std::string ExportJson() const;

  /// Number of sampling passes performed (collector + explicit).
  uint64_t samples_taken() const {
    return samples_taken_.load(std::memory_order_relaxed);
  }

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kCallbackGauge, kHistogram };

  struct Series {
    MetricLabels labels;          ///< sorted by key
    std::string label_signature;  ///< rendered sorted labels (dedupe key)
    Kind kind = Kind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
    std::function<int64_t()> callback;  ///< kCallbackGauge only
    /// Fixed-capacity sample ring; slot = head % capacity. Guarded by
    /// rings_mutex_ — only the collector writes, exporters read.
    std::vector<MetricSample> ring;
    uint64_t ring_head = 0;
  };

  struct Family {
    std::string name;
    std::string help;
    Kind kind = Kind::kCounter;
    std::vector<std::unique_ptr<Series>> series;
  };

  /// Finds or creates the series for (name, labels) with \p kind; fails a
  /// debug assert on a kind mismatch with an existing family.
  Series* GetOrCreateSeries(const std::string& name, const std::string& help,
                            MetricLabels labels, Kind kind);
  /// Current scalar value of \p series (counter/gauge load, callback
  /// evaluation, histogram count).
  int64_t ScalarValue(const Series& series) const;
  void CollectorLoop(uint64_t interval_ms);

  const uint64_t ring_capacity_;
  mutable std::mutex mutex_;  ///< guards families_ registration + iteration
  std::vector<std::unique_ptr<Family>> families_;

  mutable std::mutex rings_mutex_;  ///< guards every Series::ring
  std::atomic<uint64_t> samples_taken_{0};

  std::mutex collector_mutex_;  ///< guards collector lifecycle
  std::condition_variable collector_cv_;
  std::thread collector_;
  bool collector_stop_ = false;
  std::atomic<bool> collector_running_{false};
};

}  // namespace rowsort
