// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "common/io_worker.h"

#include <chrono>
#include <utility>

#include "common/trace.h"

namespace rowsort {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

bool IoTicket::done() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->done;
}

Status IoTicket::Wait() {
  if (state_ == nullptr) return Status::OK();
  Status result;
  {
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->cv.wait(lock, [&] { return state_->done; });
    result = state_->status;
  }
  state_.reset();
  return result;
}

IoWorker::IoWorker(uint64_t queue_capacity)
    : queue_capacity_(queue_capacity == 0 ? 1 : queue_capacity) {
  worker_ = std::thread([this] { WorkerLoop(); });
}

IoWorker::~IoWorker() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  worker_.join();
}

IoTicket IoWorker::Submit(std::function<Status()> job) {
  Job entry;
  entry.fn = std::move(job);
  entry.state = std::make_shared<io_detail::JobState>();
  const bool stats = stats_enabled_.load(std::memory_order_relaxed);
  entry.enqueue_ns = stats ? NowNs() : 0;
  entry.trace_scope = Tracer::CurrentScope();
  IoTicket ticket(entry.state);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stats && queue_.size() >= queue_capacity_) stats_.submit_blocked += 1;
    space_cv_.wait(lock,
                   [&] { return shutdown_ || queue_.size() < queue_capacity_; });
    // After shutdown began (destructor running concurrently with a Submit is
    // a caller bug, but don't hang): run the job inline.
    if (shutdown_) {
      Status status = entry.fn();
      std::lock_guard<std::mutex> state_lock(entry.state->mutex);
      entry.state->status = std::move(status);
      entry.state->done = true;
      entry.state->cv.notify_all();
      return ticket;
    }
    queue_.push_back(std::move(entry));
    if (stats && queue_.size() > stats_.max_queue_depth) {
      stats_.max_queue_depth = queue_.size();
    }
  }
  queue_cv_.notify_one();
  return ticket;
}

IoWorkerStatsSnapshot IoWorker::StatsSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void IoWorker::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    space_cv_.notify_one();

    const bool stats = stats_enabled_.load(std::memory_order_relaxed);
    const int64_t start_ns = stats ? NowNs() : 0;
    Status status;
    {
      // Adopt the submitter's trace scope for the job's spill spans.
      TraceScopeGuard scope(job.trace_scope);
      status = job.fn();
    }
    const int64_t end_ns = stats ? NowNs() : 0;

    if (stats) {
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.jobs_executed += 1;
      if (job.enqueue_ns > 0 && start_ns >= job.enqueue_ns) {
        stats_.queue_wait_ns.Record(
            static_cast<uint64_t>(start_ns - job.enqueue_ns));
      }
      if (end_ns >= start_ns) {
        stats_.run_ns.Record(static_cast<uint64_t>(end_ns - start_ns));
        stats_.busy_seconds += static_cast<double>(end_ns - start_ns) * 1e-9;
      }
    }

    {
      std::lock_guard<std::mutex> lock(job.state->mutex);
      job.state->status = std::move(status);
      job.state->done = true;
    }
    job.state->cv.notify_all();
  }
}

}  // namespace rowsort
