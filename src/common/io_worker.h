// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "common/histogram.h"
#include "common/macros.h"
#include "common/status.h"

namespace rowsort {

/// Snapshot of an IoWorker's activity since construction, folded into a
/// SortProfile's "spill/io_worker" node (docs/observability.md). Mirrors the
/// ThreadPoolStatsSnapshot conventions: per-job queue-wait and run-time
/// histograms plus total busy seconds for the single worker thread.
struct IoWorkerStatsSnapshot {
  uint64_t jobs_executed = 0;
  uint64_t max_queue_depth = 0;
  uint64_t submit_blocked = 0;      ///< Submit() calls that hit a full queue
  DurationHistogram queue_wait_ns;  ///< submit -> start, per job
  DurationHistogram run_ns;         ///< start -> finish, per job
  double busy_seconds = 0.0;
};

namespace io_detail {
/// Shared completion state between an IoTicket and the worker thread.
struct JobState {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  Status status;
};
}  // namespace io_detail

/// Handle to one submitted I/O job. Wait() blocks until the job finishes and
/// returns its Status; after Wait() the ticket is empty again. Tickets are
/// movable, not copyable — exactly one owner collects each job's result.
class IoTicket {
 public:
  IoTicket() = default;
  IoTicket(IoTicket&&) = default;
  IoTicket& operator=(IoTicket&&) = default;
  IoTicket(const IoTicket&) = delete;
  IoTicket& operator=(const IoTicket&) = delete;

  /// True while a job's result has not been collected yet.
  bool valid() const { return state_ != nullptr; }

  /// Non-blocking: true when the job has finished (Wait() would not block).
  /// False for an empty ticket.
  bool done() const;

  /// Blocks until the job completes and returns its Status. Returns OK
  /// immediately for an empty ticket. Resets the ticket to empty.
  Status Wait();

 private:
  friend class IoWorker;
  explicit IoTicket(std::shared_ptr<io_detail::JobState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<io_detail::JobState> state_;
};

/// \brief Single background thread executing spill I/O jobs in submission
/// order behind a bounded queue.
///
/// This is the overlap engine for the external-sort path (ROADMAP item 2):
/// ExternalRunWriter submits the encoded block k while the sort thread fills
/// block k+1 (write-behind), and ExternalRunReader submits the raw read of
/// block k+1 while the merge decodes block k (readahead). One worker per
/// RelationalSort keeps spill I/O sequential on disk while every producer /
/// consumer holds at most one job in flight, so the bounded queue can never
/// deadlock (jobs themselves never submit).
///
/// Jobs are Status() callables; the returned Status travels back through the
/// IoTicket so callers keep the existing sticky-Status error path. Retry,
/// CRC, failpoint, and cancellation machinery all live inside the job body
/// (external_run.cc), which is what arms failpoints on the worker thread.
class IoWorker {
 public:
  /// Starts the worker thread. \p queue_capacity bounds the number of
  /// not-yet-started jobs; Submit() blocks when the queue is full.
  explicit IoWorker(uint64_t queue_capacity = 4);
  /// Drains remaining jobs (running each — owners may still Wait on their
  /// tickets) and joins the thread.
  ~IoWorker();
  ROWSORT_DISALLOW_COPY_AND_MOVE(IoWorker);

  /// Enqueues \p job and returns a ticket for its completion. Blocks while
  /// the queue is at capacity. Jobs run in submission order on the single
  /// worker thread.
  IoTicket Submit(std::function<Status()> job);

  /// Turns on per-job accounting (queue wait, run time, busy seconds).
  /// Off by default, same convention as ThreadPool::EnableStats.
  void EnableStats(bool on) {
    stats_enabled_.store(on, std::memory_order_relaxed);
  }

  /// Accumulated stats (all zeros unless EnableStats(true) preceded the
  /// work). Safe to call while jobs are running.
  IoWorkerStatsSnapshot StatsSnapshot() const;

 private:
  struct Job {
    std::function<Status()> fn;
    std::shared_ptr<io_detail::JobState> state;
    int64_t enqueue_ns = 0;
    /// Submitter's trace scope: spill spans recorded on the worker thread
    /// stay in the submitting query's track group (common/trace.h).
    uint64_t trace_scope = 0;
  };

  void WorkerLoop();

  const uint64_t queue_capacity_;
  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;  ///< worker waits for work
  std::condition_variable space_cv_;  ///< submitters wait for queue space
  std::deque<Job> queue_;
  bool shutdown_ = false;
  std::atomic<bool> stats_enabled_{false};
  IoWorkerStatsSnapshot stats_;  ///< guarded by mutex_
  std::thread worker_;
};

}  // namespace rowsort
