// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>

namespace rowsort {

/// \file crc32.h
/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) used to checksum spill-file
/// sections so a corrupted or bit-flipped run file is detected on load and
/// surfaced as Status::IOError instead of producing garbage rows or a crash.

/// Extends a running CRC with \p size bytes. Start with crc = 0; the
/// finalization (pre/post inversion) is handled internally, so
/// Crc32(Crc32(0, a, n), b, m) == Crc32(0, concat(a, b), n + m).
uint32_t Crc32(uint32_t crc, const void* data, uint64_t size);

}  // namespace rowsort
