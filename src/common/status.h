// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "common/macros.h"

namespace rowsort {

/// Status codes for fallible library operations, RocksDB-style.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kOutOfMemory,
  kIOError,
  kNotImplemented,
  kInternal,
  kCancelled,
  kDeadlineExceeded,
  kResourceExhausted,
};

/// \brief Result of a fallible operation.
///
/// Functions that can fail for reasons other than programmer error return a
/// Status (or StatusOr<T>); internal invariants use ROWSORT_DASSERT instead.
/// A Status must be inspected via ok()/code(); it is cheap to copy when OK.
/// The class is [[nodiscard]]: silently dropping a Status is a bug.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// The service-layer shed signal: the system is at capacity and chose not
  /// to run this request (admission queue full, wait budget spent). Unlike
  /// kOutOfMemory it says nothing was wrong with the request — retrying
  /// later is expected to succeed.
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  /// True for the two cooperative-interruption codes (user cancel and
  /// deadline expiry) — failures of patience, not of the data or the disk.
  bool IsCancellation() const {
    return code_ == StatusCode::kCancelled ||
           code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsOutOfMemory() const { return code_ == StatusCode::kOutOfMemory; }
  /// True for the service-layer shed signal (see ResourceExhausted()).
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable representation, e.g. "IOError: short write".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller.
#define ROWSORT_RETURN_NOT_OK(expr)          \
  do {                                       \
    ::rowsort::Status _st = (expr);          \
    if (ROWSORT_UNLIKELY(!_st.ok())) return _st; \
  } while (0)

/// Aborts on a non-OK status; for call sites that cannot recover (tests,
/// examples, benchmark setup).
#define ROWSORT_CHECK_OK(expr)                                       \
  do {                                                               \
    ::rowsort::Status _st = (expr);                                  \
    if (ROWSORT_UNLIKELY(!_st.ok())) {                               \
      std::fprintf(stderr, "rowsort fatal status: %s at %s:%d\n",    \
                   _st.ToString().c_str(), __FILE__, __LINE__);      \
      std::abort();                                                  \
    }                                                                \
  } while (0)

/// \brief A Status or a value of type T.
///
/// Minimal StatusOr: value() asserts ok().
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /*implicit*/ StatusOr(Status status) : status_(std::move(status)) {
    ROWSORT_ASSERT(!status_.ok());
  }
  /*implicit*/ StatusOr(T value)
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    ROWSORT_ASSERT(ok());
    return value_;
  }
  const T& value() const {
    ROWSORT_ASSERT(ok());
    return value_;
  }
  T&& MoveValue() {
    ROWSORT_ASSERT(ok());
    return std::move(value_);
  }

  /// Returns the value or aborts with the status message — for call sites
  /// that cannot recover (tests, examples, benchmark setup), mirroring
  /// ROWSORT_CHECK_OK.
  T ValueOrDie() && {
    if (ROWSORT_UNLIKELY(!ok())) {
      std::fprintf(stderr, "rowsort fatal status: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace rowsort
