// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdio>
#include <cstdlib>

/// \file macros.h
/// Assertion and branch-hint macros used across the library.
///
/// ROWSORT_ASSERT is always on and guards conditions that indicate API misuse
/// or a bug regardless of build type. ROWSORT_DASSERT compiles away in release
/// builds and guards internal invariants on hot paths.

#define ROWSORT_ASSERT(cond)                                                 \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "rowsort assertion failed: %s at %s:%d\n", #cond, \
                   __FILE__, __LINE__);                                      \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define ROWSORT_DASSERT(cond) \
  do {                        \
  } while (0)
#else
#define ROWSORT_DASSERT(cond) ROWSORT_ASSERT(cond)
#endif

#define ROWSORT_LIKELY(x) __builtin_expect(!!(x), 1)
#define ROWSORT_UNLIKELY(x) __builtin_expect(!!(x), 0)

#define ROWSORT_DISALLOW_COPY(TypeName)      \
  TypeName(const TypeName&) = delete;        \
  TypeName& operator=(const TypeName&) = delete

#define ROWSORT_DISALLOW_COPY_AND_MOVE(TypeName) \
  ROWSORT_DISALLOW_COPY(TypeName);               \
  TypeName(TypeName&&) = delete;                 \
  TypeName& operator=(TypeName&&) = delete
