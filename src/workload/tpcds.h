// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>

#include "workload/tables.h"

namespace rowsort {

/// \file tpcds.h
/// Synthetic substitute for the TPC-DS dsdgen data generator (paper §VII).
///
/// The paper's end-to-end benchmarks sort two TPC-DS tables:
///  * catalog_sales (Fig. 13): key columns cs_warehouse_sk, cs_ship_mode_sk,
///    cs_promo_sk, cs_quantity; payload cs_item_sk;
///  * customer (Fig. 14): integer keys c_birth_year/month/day or string keys
///    c_last_name/c_first_name; payload c_customer_sk.
///
/// Sorting cost depends only on column domains, duplicate structure, and
/// NULL fractions, which this generator matches to the TPC-DS spec:
/// surrogate keys uniform over the dimension cardinality at the given scale
/// factor, quantity in [1, 100], ~1.8% NULLs in nullable FK columns, birth
/// dates uniform in 1924-1992, and names drawn from TPC-DS-style name lists
/// (skewed: a small set of frequent last names, many rarer ones).

/// TPC-DS cardinalities relevant to the paper's Table IV; row counts can be
/// scaled down uniformly for smaller machines (scale_divisor).
struct TpcdsScale {
  int scale_factor = 10;      ///< TPC-DS SF (10, 100, 300 used in the paper)
  uint64_t scale_divisor = 1; ///< divide row counts by this (laptop runs)
  uint64_t seed = 2023;

  /// Row counts per the TPC-DS specification at this scale factor.
  uint64_t CatalogSalesRows() const;
  uint64_t CustomerRows() const;

  /// Dimension cardinalities at this scale factor (domains of the FK keys).
  uint64_t WarehouseCount() const;
  uint64_t ShipModeCount() const;  ///< 20 at every scale factor
  uint64_t PromotionCount() const;
  uint64_t ItemCount() const;
};

/// Generates catalog_sales columns
///   [cs_warehouse_sk, cs_ship_mode_sk, cs_promo_sk, cs_quantity, cs_item_sk]
/// (all INT32; the FK columns contain NULLs as in dsdgen output).
Table MakeCatalogSales(const TpcdsScale& scale);

/// Generates customer columns
///   [c_customer_sk, c_birth_year, c_birth_month, c_birth_day,
///    c_last_name, c_first_name]
/// (INT32 x4 then VARCHAR x2; birth columns and names contain NULLs).
Table MakeCustomer(const TpcdsScale& scale);

}  // namespace rowsort
