// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "workload/tables.h"

#include "common/random.h"

namespace rowsort {

Table Table::Project(const std::vector<uint64_t>& keep) const {
  std::vector<LogicalType> types;
  std::vector<std::string> names;
  for (uint64_t col : keep) {
    types.push_back(types_[col]);
    if (col < names_.size()) names.push_back(names_[col]);
  }
  Table result(types, names);
  for (const auto& chunk : chunks_) {
    DataChunk out = result.NewChunk();
    for (uint64_t i = 0; i < keep.size(); ++i) {
      for (uint64_t row = 0; row < chunk.size(); ++row) {
        out.SetValue(i, row, chunk.GetValue(keep[i], row));
      }
    }
    out.SetSize(chunk.size());
    result.Append(std::move(out));
  }
  return result;
}

Table MakeShuffledIntegerTable(uint64_t count, uint64_t seed) {
  Random rng(seed);
  std::vector<int32_t> values(count);
  for (uint64_t i = 0; i < count; ++i) values[i] = static_cast<int32_t>(i);
  rng.Shuffle(values.data(), count);

  Table table({LogicalType(TypeId::kInt32)}, {"value"});
  uint64_t offset = 0;
  while (offset < count) {
    uint64_t n = std::min(kVectorSize, count - offset);
    DataChunk chunk = table.NewChunk();
    int32_t* data = chunk.column(0).TypedData<int32_t>();
    std::memcpy(data, values.data() + offset, n * sizeof(int32_t));
    chunk.SetSize(n);
    table.Append(std::move(chunk));
    offset += n;
  }
  return table;
}

Table MakeUniformFloatTable(uint64_t count, uint64_t seed) {
  Random rng(seed);
  Table table({LogicalType(TypeId::kFloat)}, {"value"});
  uint64_t offset = 0;
  while (offset < count) {
    uint64_t n = std::min(kVectorSize, count - offset);
    DataChunk chunk = table.NewChunk();
    float* data = chunk.column(0).TypedData<float>();
    for (uint64_t i = 0; i < n; ++i) {
      data[i] = rng.UniformFloat(-1e9f, 1e9f);
    }
    chunk.SetSize(n);
    table.Append(std::move(chunk));
    offset += n;
  }
  return table;
}

}  // namespace rowsort
