// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>

#include "workload/tables.h"

namespace rowsort {

/// \file rle.h
/// Run-length statistics: the paper's §II lists "improving run-length
/// encoding compression" among the implicit uses of sorting (citing Lemire &
/// Kaser). These helpers quantify that benefit: a sorted column collapses
/// into far fewer runs, i.e., compresses far better under RLE.

/// Number of value runs in column \p col of \p table (NULLs form runs too).
/// A column with r runs RLE-compresses to r (value, length) pairs.
uint64_t CountRuns(const Table& table, uint64_t col);

/// Hypothetical RLE size in bytes of column \p col: runs * (value width + 4).
uint64_t RleBytes(const Table& table, uint64_t col);

/// Hypothetical frame-of-reference (FOR) size in bytes of an integer-typed
/// column \p col: values are split into blocks of \p block_rows; each block
/// stores a 8-byte reference (its minimum), a 1-byte bit width, and the
/// values bit-packed as (value - min) in just enough bits for the block's
/// range. NULLs cost one validity bit per row. Sorting shrinks the per-block
/// range (often to zero bits), which is exactly the effect the compression
/// workload measures. Non-integer columns fall back to their raw size
/// (width x rows) — FOR does not apply.
uint64_t ForBytes(const Table& table, uint64_t col,
                  uint64_t block_rows = 1024);

}  // namespace rowsort
