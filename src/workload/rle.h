// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>

#include "workload/tables.h"

namespace rowsort {

/// \file rle.h
/// Run-length statistics: the paper's §II lists "improving run-length
/// encoding compression" among the implicit uses of sorting (citing Lemire &
/// Kaser). These helpers quantify that benefit: a sorted column collapses
/// into far fewer runs, i.e., compresses far better under RLE.

/// Number of value runs in column \p col of \p table (NULLs form runs too).
/// A column with r runs RLE-compresses to r (value, length) pairs.
uint64_t CountRuns(const Table& table, uint64_t col);

/// Hypothetical RLE size in bytes of column \p col: runs * (value width + 4).
uint64_t RleBytes(const Table& table, uint64_t col);

}  // namespace rowsort
