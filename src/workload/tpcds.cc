// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "workload/tpcds.h"

#include "common/macros.h"
#include "common/random.h"

namespace rowsort {

namespace {

// dsdgen leaves roughly this fraction of nullable columns NULL.
constexpr double kNullFraction = 0.018;

// TPC-DS-style name lists. dsdgen draws last names from a frequency-ranked
// list (a few very common names dominate) and first names from per-gender
// lists; we reproduce that skew with a Zipf-ish pick over ranked lists.
const char* const kLastNames[] = {
    "Smith",    "Johnson",  "Williams", "Jones",    "Brown",    "Davis",
    "Miller",   "Wilson",   "Moore",    "Taylor",   "Anderson", "Thomas",
    "Jackson",  "White",    "Harris",   "Martin",   "Thompson", "Garcia",
    "Martinez", "Robinson", "Clark",    "Rodriguez", "Lewis",   "Lee",
    "Walker",   "Hall",     "Allen",    "Young",    "Hernandez", "King",
    "Wright",   "Lopez",    "Hill",     "Scott",    "Green",    "Adams",
    "Baker",    "Gonzalez", "Nelson",   "Carter",   "Mitchell", "Perez",
    "Roberts",  "Turner",   "Phillips", "Campbell", "Parker",   "Evans",
    "Edwards",  "Collins",  "Stewart",  "Sanchez",  "Morris",   "Rogers",
    "Reed",     "Cook",     "Morgan",   "Bell",     "Murphy",   "Bailey",
    "Rivera",   "Cooper",   "Richardson", "Cox",    "Howard",   "Ward",
    "Torres",   "Peterson", "Gray",     "Ramirez",  "James",    "Watson",
    "Brooks",   "Kelly",    "Sanders",  "Price",    "Bennett",  "Wood",
    "Barnes",   "Ross",     "Henderson", "Coleman", "Jenkins",  "Perry",
    "Powell",   "Long",     "Patterson", "Hughes",  "Flores",   "Washington",
    "Butler",   "Simmons",  "Foster",   "Gonzales", "Bryant",   "Alexander",
    "Russell",  "Griffin",  "Diaz",     "Hayes"};

const char* const kFirstNames[] = {
    "James",   "Mary",      "John",    "Patricia", "Robert",  "Jennifer",
    "Michael", "Linda",     "William", "Elizabeth", "David",  "Barbara",
    "Richard", "Susan",     "Joseph",  "Jessica",  "Thomas",  "Sarah",
    "Charles", "Karen",     "Christopher", "Nancy", "Daniel", "Lisa",
    "Matthew", "Margaret",  "Anthony", "Betty",    "Donald",  "Sandra",
    "Mark",    "Ashley",    "Paul",    "Dorothy",  "Steven",  "Kimberly",
    "Andrew",  "Emily",     "Kenneth", "Donna",    "Joshua",  "Michelle",
    "Kevin",   "Carol",     "Brian",   "Amanda",   "George",  "Melissa",
    "Edward",  "Deborah",   "Ronald",  "Stephanie", "Timothy", "Rebecca",
    "Jason",   "Laura",     "Jeffrey", "Sharon",   "Ryan",    "Cynthia",
    "Jacob",   "Kathleen",  "Gary",    "Amy",      "Nicholas", "Shirley",
    "Eric",    "Angela",    "Jonathan", "Helen",   "Stephen", "Anna",
    "Larry",   "Brenda",    "Justin",  "Pamela",   "Scott",   "Nicole",
    "Brandon", "Emma",      "Benjamin", "Samantha", "Samuel", "Katherine",
    "Gregory", "Christine", "Frank",   "Debra",    "Alexander", "Rachel",
    "Raymond", "Catherine", "Patrick", "Carolyn",  "Jack",    "Janet",
    "Dennis",  "Ruth",      "Jerry",   "Maria"};

/// Rank-skewed pick: low ranks (common names) are much more likely,
/// approximating dsdgen's frequency-weighted name selection.
template <size_t N>
const char* PickName(const char* const (&names)[N], Random& rng) {
  // Square a uniform variate to bias toward small indices.
  double u = rng.NextDouble();
  size_t idx = static_cast<size_t>(u * u * N);
  if (idx >= N) idx = N - 1;
  return names[idx];
}

int32_t NullableKey(Random& rng, uint64_t cardinality) {
  return static_cast<int32_t>(rng.Uniform(cardinality)) + 1;
}

}  // namespace

uint64_t TpcdsScale::CatalogSalesRows() const {
  // TPC-DS spec: ~1,441,548 rows per SF for catalog_sales.
  uint64_t rows;
  switch (scale_factor) {
    case 1:
      rows = 1441548;
      break;
    case 10:
      rows = 14401261;
      break;
    case 100:
      rows = 143997065;
      break;
    case 300:
      rows = 260014655;
      break;
    default:
      rows = static_cast<uint64_t>(scale_factor) * 1441548;
  }
  return std::max<uint64_t>(rows / scale_divisor, 1);
}

uint64_t TpcdsScale::CustomerRows() const {
  uint64_t rows;
  switch (scale_factor) {
    case 1:
      rows = 100000;
      break;
    case 10:
      rows = 500000;
      break;
    case 100:
      rows = 2000000;
      break;
    case 300:
      rows = 5000000;
      break;
    default:
      rows = static_cast<uint64_t>(scale_factor) * 20000;
  }
  return std::max<uint64_t>(rows / scale_divisor, 1);
}

uint64_t TpcdsScale::WarehouseCount() const {
  if (scale_factor <= 1) return 5;
  if (scale_factor <= 10) return 10;
  if (scale_factor <= 100) return 15;
  return 17;
}

uint64_t TpcdsScale::ShipModeCount() const { return 20; }

uint64_t TpcdsScale::PromotionCount() const {
  if (scale_factor <= 1) return 300;
  if (scale_factor <= 10) return 450;
  if (scale_factor <= 100) return 1000;
  return 1300;
}

uint64_t TpcdsScale::ItemCount() const {
  if (scale_factor <= 1) return 18000;
  if (scale_factor <= 10) return 102000;
  if (scale_factor <= 100) return 204000;
  return 264000;
}

Table MakeCatalogSales(const TpcdsScale& scale) {
  Random rng(scale.seed);
  const uint64_t rows = scale.CatalogSalesRows();
  Table table(
      {TypeId::kInt32, TypeId::kInt32, TypeId::kInt32, TypeId::kInt32,
       TypeId::kInt32},
      {"cs_warehouse_sk", "cs_ship_mode_sk", "cs_promo_sk", "cs_quantity",
       "cs_item_sk"});

  const uint64_t warehouses = scale.WarehouseCount();
  const uint64_t ship_modes = scale.ShipModeCount();
  const uint64_t promos = scale.PromotionCount();
  const uint64_t items = scale.ItemCount();

  uint64_t produced = 0;
  while (produced < rows) {
    uint64_t n = std::min(kVectorSize, rows - produced);
    DataChunk chunk = table.NewChunk();
    auto* warehouse = chunk.column(0).TypedData<int32_t>();
    auto* ship_mode = chunk.column(1).TypedData<int32_t>();
    auto* promo = chunk.column(2).TypedData<int32_t>();
    auto* quantity = chunk.column(3).TypedData<int32_t>();
    auto* item = chunk.column(4).TypedData<int32_t>();
    for (uint64_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(kNullFraction)) {
        chunk.column(0).validity().SetInvalid(i);
        warehouse[i] = 0;
      } else {
        warehouse[i] = NullableKey(rng, warehouses);
      }
      if (rng.Bernoulli(kNullFraction)) {
        chunk.column(1).validity().SetInvalid(i);
        ship_mode[i] = 0;
      } else {
        ship_mode[i] = NullableKey(rng, ship_modes);
      }
      if (rng.Bernoulli(kNullFraction)) {
        chunk.column(2).validity().SetInvalid(i);
        promo[i] = 0;
      } else {
        promo[i] = NullableKey(rng, promos);
      }
      if (rng.Bernoulli(kNullFraction)) {
        chunk.column(3).validity().SetInvalid(i);
        quantity[i] = 0;
      } else {
        quantity[i] = static_cast<int32_t>(rng.Uniform(100)) + 1;
      }
      item[i] = NullableKey(rng, items);
    }
    chunk.SetSize(n);
    table.Append(std::move(chunk));
    produced += n;
  }
  return table;
}

Table MakeCustomer(const TpcdsScale& scale) {
  Random rng(scale.seed + 1);
  const uint64_t rows = scale.CustomerRows();
  Table table(
      {TypeId::kInt32, TypeId::kInt32, TypeId::kInt32, TypeId::kInt32,
       TypeId::kVarchar, TypeId::kVarchar},
      {"c_customer_sk", "c_birth_year", "c_birth_month", "c_birth_day",
       "c_last_name", "c_first_name"});

  uint64_t produced = 0;
  while (produced < rows) {
    uint64_t n = std::min(kVectorSize, rows - produced);
    DataChunk chunk = table.NewChunk();
    auto* sk = chunk.column(0).TypedData<int32_t>();
    auto* year = chunk.column(1).TypedData<int32_t>();
    auto* month = chunk.column(2).TypedData<int32_t>();
    auto* day = chunk.column(3).TypedData<int32_t>();
    for (uint64_t i = 0; i < n; ++i) {
      sk[i] = static_cast<int32_t>(produced + i) + 1;
      if (rng.Bernoulli(kNullFraction)) {
        chunk.column(1).validity().SetInvalid(i);
        year[i] = 0;
      } else {
        // dsdgen: birth years uniform in 1924..1992 (the paper's Fig. 7
        // example uses exactly this column).
        year[i] = 1924 + static_cast<int32_t>(rng.Uniform(69));
      }
      if (rng.Bernoulli(kNullFraction)) {
        chunk.column(2).validity().SetInvalid(i);
        month[i] = 0;
      } else {
        month[i] = 1 + static_cast<int32_t>(rng.Uniform(12));
      }
      if (rng.Bernoulli(kNullFraction)) {
        chunk.column(3).validity().SetInvalid(i);
        day[i] = 0;
      } else {
        day[i] = 1 + static_cast<int32_t>(rng.Uniform(28));
      }
      if (rng.Bernoulli(kNullFraction)) {
        chunk.column(4).validity().SetInvalid(i);
      } else {
        chunk.column(4).SetString(i, PickName(kLastNames, rng));
      }
      if (rng.Bernoulli(kNullFraction)) {
        chunk.column(5).validity().SetInvalid(i);
      } else {
        chunk.column(5).SetString(i, PickName(kFirstNames, rng));
      }
    }
    chunk.SetSize(n);
    table.Append(std::move(chunk));
    produced += n;
  }
  return table;
}

}  // namespace rowsort
