// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "workload/microbench.h"

#include "common/macros.h"
#include "common/random.h"
#include "common/string_util.h"

namespace rowsort {

namespace {
constexpr uint64_t kCorrelatedUniqueValues = 128;
}

std::string MicroWorkload::Label() const {
  if (distribution == MicroDistribution::kRandom) return "Random";
  return StringFormat("Correlated%.2f", correlation);
}

MicroColumns GenerateMicroColumns(const MicroWorkload& workload) {
  ROWSORT_ASSERT(workload.num_key_columns >= 1);
  Random rng(workload.seed);
  MicroColumns columns(workload.num_key_columns);
  for (auto& col : columns) col.resize(workload.num_rows);

  if (workload.distribution == MicroDistribution::kRandom) {
    for (auto& col : columns) {
      for (auto& v : col) v = rng.Next32();
    }
    return columns;
  }

  // CorrelatedP: first column uniform over 128 values; column C+1 copies
  // column C's value with probability P (encouraging ties down the chain).
  for (auto& v : columns[0]) {
    v = static_cast<uint32_t>(rng.Uniform(kCorrelatedUniqueValues));
  }
  for (uint64_t c = 1; c < workload.num_key_columns; ++c) {
    for (uint64_t r = 0; r < workload.num_rows; ++r) {
      if (rng.Bernoulli(workload.correlation)) {
        columns[c][r] = columns[c - 1][r];
      } else {
        columns[c][r] =
            static_cast<uint32_t>(rng.Uniform(kCorrelatedUniqueValues));
      }
    }
  }
  return columns;
}

std::vector<MicroWorkload> StandardMicroSweep(uint64_t min_rows_log2,
                                              uint64_t max_rows_log2,
                                              uint64_t max_key_columns) {
  std::vector<MicroWorkload> sweep;
  struct Dist {
    MicroDistribution distribution;
    double correlation;
  };
  const Dist kDists[] = {{MicroDistribution::kRandom, 0.0},
                         {MicroDistribution::kCorrelated, 0.0},
                         {MicroDistribution::kCorrelated, 0.5},
                         {MicroDistribution::kCorrelated, 1.0}};
  for (const auto& dist : kDists) {
    for (uint64_t cols = 1; cols <= max_key_columns; ++cols) {
      for (uint64_t log2 = min_rows_log2; log2 <= max_rows_log2; log2 += 4) {
        MicroWorkload w;
        w.num_rows = uint64_t(1) << log2;
        w.num_key_columns = cols;
        w.distribution = dist.distribution;
        w.correlation = dist.correlation;
        sweep.push_back(w);
      }
    }
  }
  return sweep;
}

}  // namespace rowsort
