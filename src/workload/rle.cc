// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "workload/rle.h"

#include "common/macros.h"

namespace rowsort {

uint64_t CountRuns(const Table& table, uint64_t col) {
  ROWSORT_ASSERT(col < table.types().size());
  uint64_t runs = 0;
  bool have_prev = false;
  Value prev;
  for (uint64_t ci = 0; ci < table.ChunkCount(); ++ci) {
    const DataChunk& chunk = table.chunk(ci);
    for (uint64_t r = 0; r < chunk.size(); ++r) {
      Value cur = chunk.GetValue(col, r);
      if (!have_prev || !(cur == prev)) {
        ++runs;
        prev = std::move(cur);
        have_prev = true;
      }
    }
  }
  return runs;
}

uint64_t RleBytes(const Table& table, uint64_t col) {
  uint64_t value_width = table.types()[col].FixedSize();
  return CountRuns(table, col) * (value_width + sizeof(uint32_t));
}

}  // namespace rowsort
