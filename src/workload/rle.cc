// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "workload/rle.h"

#include "common/macros.h"

namespace rowsort {

uint64_t CountRuns(const Table& table, uint64_t col) {
  ROWSORT_ASSERT(col < table.types().size());
  uint64_t runs = 0;
  bool have_prev = false;
  Value prev;
  for (uint64_t ci = 0; ci < table.ChunkCount(); ++ci) {
    const DataChunk& chunk = table.chunk(ci);
    for (uint64_t r = 0; r < chunk.size(); ++r) {
      Value cur = chunk.GetValue(col, r);
      if (!have_prev || !(cur == prev)) {
        ++runs;
        prev = std::move(cur);
        have_prev = true;
      }
    }
  }
  return runs;
}

uint64_t RleBytes(const Table& table, uint64_t col) {
  uint64_t value_width = table.types()[col].FixedSize();
  return CountRuns(table, col) * (value_width + sizeof(uint32_t));
}

namespace {

/// Signed view of any integer-typed Value; Date is int32 days underneath.
bool IntegerValue(const Value& v, int64_t* out) {
  switch (v.type().id()) {
    case TypeId::kInt8: *out = v.int8_value(); return true;
    case TypeId::kInt16: *out = v.int16_value(); return true;
    case TypeId::kInt32:
    case TypeId::kDate: *out = v.int32_value(); return true;
    case TypeId::kInt64: *out = v.int64_value(); return true;
    case TypeId::kUint32: *out = v.uint32_value(); return true;
    case TypeId::kUint64:
      *out = static_cast<int64_t>(v.uint64_value());
      return true;
    default: return false;
  }
}

/// Bits needed to represent values in [0, range].
uint64_t BitsForRange(uint64_t range) {
  uint64_t bits = 0;
  while (range > 0) {
    ++bits;
    range >>= 1;
  }
  return bits;
}

}  // namespace

uint64_t ForBytes(const Table& table, uint64_t col, uint64_t block_rows) {
  ROWSORT_ASSERT(col < table.types().size());
  ROWSORT_ASSERT(block_rows > 0);
  const uint64_t width = table.types()[col].FixedSize();
  uint64_t bytes = 0;
  uint64_t in_block = 0;
  bool integer = true;
  int64_t min = 0, max = 0;
  bool have_value = false;
  auto flush = [&]() {
    if (in_block == 0) return;
    // Per block: 8-byte reference + 1-byte bit width + packed values +
    // one validity bit per row.
    const uint64_t range =
        have_value ? static_cast<uint64_t>(max) - static_cast<uint64_t>(min)
                   : 0;
    const uint64_t bits = BitsForRange(range);
    bytes += 8 + 1 + (in_block * bits + 7) / 8 + (in_block + 7) / 8;
    in_block = 0;
    have_value = false;
  };
  for (uint64_t ci = 0; ci < table.ChunkCount() && integer; ++ci) {
    const DataChunk& chunk = table.chunk(ci);
    for (uint64_t r = 0; r < chunk.size(); ++r) {
      Value cur = chunk.GetValue(col, r);
      int64_t v = 0;
      if (cur.is_null()) {
        // NULLs cost only their validity bit.
      } else if (IntegerValue(cur, &v)) {
        if (!have_value || v < min) min = v;
        if (!have_value || v > max) max = v;
        have_value = true;
      } else {
        integer = false;
        break;
      }
      if (++in_block == block_rows) flush();
    }
  }
  if (!integer) return width * table.row_count();
  flush();
  return bytes;
}

}  // namespace rowsort
