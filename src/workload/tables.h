// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vector/data_chunk.h"

namespace rowsort {

/// \brief An in-memory table: a schema plus a sequence of DataChunks, the
/// input that the sort-operator implementations consume chunk by chunk.
class Table {
 public:
  Table() = default;
  explicit Table(std::vector<LogicalType> types,
                 std::vector<std::string> names = {})
      : types_(std::move(types)), names_(std::move(names)) {}
  ROWSORT_DISALLOW_COPY(Table);
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const std::vector<LogicalType>& types() const { return types_; }
  const std::vector<std::string>& names() const { return names_; }
  uint64_t row_count() const { return row_count_; }
  uint64_t ChunkCount() const { return chunks_.size(); }
  const DataChunk& chunk(uint64_t i) const { return chunks_[i]; }

  /// Appends a full chunk (takes ownership).
  void Append(DataChunk&& chunk) {
    row_count_ += chunk.size();
    chunks_.push_back(std::move(chunk));
  }

  /// Allocates a fresh chunk with this table's schema.
  DataChunk NewChunk() const {
    DataChunk chunk;
    chunk.Initialize(types_);
    return chunk;
  }

  /// Builds a table whose single projection keeps columns \p keep (indices
  /// into this table), sharing no storage (values are copied).
  Table Project(const std::vector<uint64_t>& keep) const;

 private:
  std::vector<LogicalType> types_;
  std::vector<std::string> names_;
  std::vector<DataChunk> chunks_;
  uint64_t row_count_ = 0;
};

/// Fig. 12 first workload: \p count 32-bit integers 0..count-1, shuffled
/// ("The first set contains 32-bit integers from 0 to 99.999.999, shuffled").
Table MakeShuffledIntegerTable(uint64_t count, uint64_t seed);

/// Fig. 12 second workload: \p count 32-bit floats uniform in [-1e9, 1e9].
Table MakeUniformFloatTable(uint64_t count, uint64_t seed);

}  // namespace rowsort
