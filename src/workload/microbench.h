// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rowsort {

/// \brief Micro-benchmark workload generator (paper §III-A).
///
/// Columns of unsigned 32-bit integers drawn from two distributions:
///  * Random      — uniform over the full uint32 domain, so each column has
///                  virtually no duplicate values;
///  * CorrelatedP — 128 unique values per column; the first column is
///                  uniform; each subsequent column copies the previous
///                  column's value with probability P and is uniform over the
///                  128 values otherwise. Higher P means more cross-column
///                  ties, forcing comparisons to look at later key columns.
///
/// Row counts in the paper sweep 2^12 .. 2^24 and key column counts 1..4.
enum class MicroDistribution : uint8_t {
  kRandom,
  kCorrelated,
};

struct MicroWorkload {
  uint64_t num_rows = 1 << 16;
  uint64_t num_key_columns = 1;
  MicroDistribution distribution = MicroDistribution::kRandom;
  double correlation = 0.0;  ///< the P of CorrelatedP; ignored for kRandom
  uint64_t seed = 42;

  /// "Random" or "Correlated0.50"-style label used in benchmark output.
  std::string Label() const;
};

/// Column-major uint32 data: result[c][r] is row r of key column c.
using MicroColumns = std::vector<std::vector<uint32_t>>;

/// Generates the workload's key columns (deterministic in workload.seed).
MicroColumns GenerateMicroColumns(const MicroWorkload& workload);

/// The paper's standard sweep axes (used by several bench binaries).
std::vector<MicroWorkload> StandardMicroSweep(uint64_t min_rows_log2,
                                              uint64_t max_rows_log2,
                                              uint64_t max_key_columns);

}  // namespace rowsort
