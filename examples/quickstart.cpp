// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Quickstart: sort a small table with the rowsort public API.
//
//   SELECT * FROM t ORDER BY score DESC NULLS LAST, name ASC;
//
// Demonstrates: building a Table from DataChunks, describing an ORDER BY
// with SortSpec, running the pipeline via RelationalSort::SortTable, and
// reading the sorted result.
#include <cstdio>

#include "engine/sort_engine.h"
#include "workload/tables.h"

using namespace rowsort;

int main() {
  // 1. Build a table: (name VARCHAR, score DOUBLE).
  Table table({TypeId::kVarchar, TypeId::kDouble}, {"name", "score"});
  DataChunk chunk = table.NewChunk();
  struct RowData {
    const char* name;
    double score;
    bool null_score;
  };
  const RowData rows[] = {
      {"alice", 91.5, false}, {"bob", 78.0, false},  {"carol", 0, true},
      {"dave", 91.5, false},  {"erin", 99.25, false}, {"frank", 78.0, false},
  };
  uint64_t n = 0;
  for (const auto& r : rows) {
    chunk.SetValue(0, n, Value::Varchar(r.name));
    chunk.SetValue(1, n,
                   r.null_score ? Value::Null(TypeId::kDouble)
                                : Value::Double(r.score));
    ++n;
  }
  chunk.SetSize(n);
  table.Append(std::move(chunk));

  // 2. Describe the ORDER BY: score DESC NULLS LAST, then name ASC.
  SortSpec spec({
      SortColumn(1, TypeId::kDouble, OrderType::kDescending,
                 NullOrder::kNullsLast),
      SortColumn(0, TypeId::kVarchar, OrderType::kAscending,
                 NullOrder::kNullsLast),
  });
  std::printf("ORDER BY %s\n\n", spec.ToString().c_str());

  // 3. Sort. Under the hood (paper Fig. 11): the chunk is converted to
  // normalized key rows + payload rows, sorted with radix sort or pdqsort,
  // and converted back to vectors.
  SortMetrics metrics;
  Table sorted = RelationalSort::SortTable(table, spec, {}, &metrics).ValueOrDie();

  // 4. Read the result.
  std::printf("%-8s %s\n", "name", "score");
  for (uint64_t ci = 0; ci < sorted.ChunkCount(); ++ci) {
    const DataChunk& out = sorted.chunk(ci);
    for (uint64_t r = 0; r < out.size(); ++r) {
      std::printf("%-8s %s\n", out.GetValue(0, r).ToString().c_str(),
                  out.GetValue(1, r).ToString().c_str());
    }
  }
  std::printf("\nsorted %llu rows in %llu run(s)\n",
              (unsigned long long)metrics.rows,
              (unsigned long long)metrics.runs_generated);
  return 0;
}
