// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// The paper's §II example, on the synthetic TPC-DS customer table:
//
//   SELECT * FROM customer
//   ORDER BY c_last_name DESC NULLS LAST,
//            c_birth_year ASC NULLS FIRST;
//
// Demonstrates key normalization over VARCHAR prefixes (Fig. 7), DESC bit
// flipping, NULL-byte placement, and string tie resolution beyond the
// 12-byte prefix — all through the public API.
#include <cstdio>

#include "common/string_util.h"
#include "engine/sort_engine.h"
#include "workload/tpcds.h"

using namespace rowsort;

int main() {
  TpcdsScale scale;
  scale.scale_factor = 1;
  scale.scale_divisor = 10;  // ~10,000 customers for a readable demo
  Table customer = MakeCustomer(scale);
  std::printf("customer table: %s rows\n",
              FormatCount(customer.row_count()).c_str());

  // Columns: 0 c_customer_sk, 1 c_birth_year, 2 c_birth_month,
  //          3 c_birth_day, 4 c_last_name, 5 c_first_name.
  SortSpec spec({
      SortColumn(4, TypeId::kVarchar, OrderType::kDescending,
                 NullOrder::kNullsLast),
      SortColumn(1, TypeId::kInt32, OrderType::kAscending,
                 NullOrder::kNullsFirst),
  });
  std::printf("ORDER BY c_last_name DESC NULLS LAST, "
              "c_birth_year ASC NULLS FIRST\n\n");

  SortEngineConfig config;
  config.threads = 2;  // morsel-driven parallel sink + Merge Path merge
  config.run_size_rows = 256;  // force several runs and a real merge
  SortMetrics metrics;
  Table sorted = RelationalSort::SortTable(customer, spec, config, &metrics).ValueOrDie();

  std::printf("%-12s %-10s %-12s\n", "c_last_name", "birth_year",
              "c_first_name");
  const DataChunk& first = sorted.chunk(0);
  for (uint64_t r = 0; r < std::min<uint64_t>(15, first.size()); ++r) {
    std::printf("%-12s %-10s %-12s\n",
                first.GetValue(4, r).ToString().c_str(),
                first.GetValue(1, r).ToString().c_str(),
                first.GetValue(5, r).ToString().c_str());
  }
  std::printf("...\n\n");
  std::printf("runs generated: %llu, sink %.1fms, run sort %.1fms, merge "
              "%.1fms\n",
              (unsigned long long)metrics.runs_generated,
              metrics.sink_seconds * 1e3, metrics.run_sort_seconds * 1e3,
              metrics.merge_seconds * 1e3);
  return 0;
}
