// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Chained blocking operators on the unified row format — the paper's Future
// Work §IX ¶2: "the aggregate, join, and window operators are also blocking
// operators ... In DuckDB, these operators use a unified row format."
//
// Pipeline:
//   catalog_sales
//     -> HashAggregate: GROUP BY cs_warehouse_sk: COUNT(*), SUM(quantity)
//     -> RelationalSort: ORDER BY total_quantity DESC
//     -> TopN is implicit (we print the leading rows)
//     -> ComputeWindow: RANK() OVER (ORDER BY total_quantity DESC)
#include <cstdio>

#include "common/string_util.h"
#include "engine/aggregate.h"
#include "engine/sort_engine.h"
#include "engine/window.h"
#include "workload/tpcds.h"

using namespace rowsort;

int main() {
  TpcdsScale scale;
  scale.scale_factor = 1;
  scale.scale_divisor = 10;
  Table sales = MakeCatalogSales(scale);
  std::printf("catalog_sales: %s rows\n\n",
              FormatCount(sales.row_count()).c_str());

  // GROUP BY cs_warehouse_sk: COUNT(cs_item_sk), SUM(cs_quantity).
  HashAggregate agg({0},
                    {{AggregateFunction::kCount, 4},
                     {AggregateFunction::kSum, 3}},
                    sales.types());
  for (uint64_t c = 0; c < sales.ChunkCount(); ++c) {
    agg.Sink(sales.chunk(c));
  }
  Table grouped = agg.Finalize();
  std::printf("after GROUP BY cs_warehouse_sk: %s groups\n",
              FormatCount(grouped.row_count()).c_str());

  // RANK() OVER (ORDER BY sum_quantity DESC): the window operator re-sorts
  // the aggregate's rows — rows flow between the blocking operators.
  WindowSpec window;
  window.order_by = {SortColumn(2, TypeId::kInt64, OrderType::kDescending,
                                NullOrder::kNullsLast)};
  Table ranked = ComputeWindow(grouped, window, {WindowFunction::kRank}).ValueOrDie();

  std::printf("\n%-14s %12s %14s %6s\n", "warehouse_sk", "order_count",
              "sum_quantity", "rank");
  const DataChunk& chunk = ranked.chunk(0);
  for (uint64_t r = 0; r < std::min<uint64_t>(10, chunk.size()); ++r) {
    std::printf("%-14s %12s %14s %6s\n",
                chunk.GetValue(0, r).ToString().c_str(),
                chunk.GetValue(1, r).ToString().c_str(),
                chunk.GetValue(2, r).ToString().c_str(),
                chunk.GetValue(3, r).ToString().c_str());
  }
  return 0;
}
