// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Graceful degradation (paper Future Work §IX): sort more data than the
// run-generation threshold holds in memory by spilling sorted runs to disk
// in the unified row format, then merging them back two at a time.
//
// Demonstrates: SortEngineConfig::spill_directory, bounded resident memory,
// that the spilled result is byte-identical in order to the in-memory
// result, and deadline-bounded sorting (a sort that outlives its Deadline
// returns Status::DeadlineExceeded instead of running to completion).
#include <cstdio>
#include <cstdlib>

#include "common/cancellation.h"
#include "common/string_util.h"
#include "engine/sort_engine.h"
#include "workload/tables.h"

using namespace rowsort;

int main() {
  const uint64_t rows = 400'000;
  const uint64_t run_rows = 50'000;  // 8 spilled runs
  Table input = MakeShuffledIntegerTable(rows, 17);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});

  std::string dir = "/tmp/rowsort_external_demo";
  std::string cmd = "mkdir -p " + dir;
  if (std::system(cmd.c_str()) != 0) {
    std::fprintf(stderr, "cannot create %s\n", dir.c_str());
    return 1;
  }

  std::printf("sorting %s rows with %s-row runs spilled to %s\n",
              FormatCount(rows).c_str(), FormatCount(run_rows).c_str(),
              dir.c_str());

  SortEngineConfig config;
  config.run_size_rows = run_rows;
  config.spill_directory = dir;
  SortMetrics metrics;
  Table sorted = RelationalSort::SortTable(input, spec, config, &metrics).ValueOrDie();

  // Verify against the fully in-memory pipeline.
  SortEngineConfig mem_config;
  mem_config.run_size_rows = run_rows;
  Table reference = RelationalSort::SortTable(input, spec, mem_config).ValueOrDie();

  bool identical = sorted.row_count() == reference.row_count();
  for (uint64_t c = 0; identical && c < sorted.ChunkCount(); ++c) {
    for (uint64_t r = 0; identical && r < sorted.chunk(c).size(); ++r) {
      identical = sorted.chunk(c).GetValue(0, r) ==
                  reference.chunk(c).GetValue(0, r);
    }
  }

  std::printf("runs spilled and merged: %llu\n",
              (unsigned long long)metrics.runs_generated);
  std::printf("external merge time: %.1fms\n", metrics.merge_seconds * 1e3);
  std::printf("result matches in-memory sort: %s\n",
              identical ? "YES" : "NO");
  std::printf("first values: ");
  for (uint64_t r = 0; r < 8; ++r) {
    std::printf("%s ", sorted.chunk(0).GetValue(0, r).ToString().c_str());
  }
  std::printf("...\n");

  // Deadline-bounded sorting: an already-expired deadline must surface
  // Status::DeadlineExceeded — not a crash, not a partial table — and the
  // spill directory must stay clean (the destructor removes every run file).
  CancellationSource deadline_source(Deadline::AfterMicros(0));
  SortEngineConfig bounded = config;
  bounded.cancellation = deadline_source.token();
  SortMetrics bounded_metrics;
  StatusOr<Table> bounded_result =
      RelationalSort::SortTable(input, spec, bounded, &bounded_metrics);
  bool deadline_ok =
      !bounded_result.ok() &&
      bounded_result.status().code() == StatusCode::kDeadlineExceeded;
  std::printf("\nsort with expired deadline: %s\n",
              bounded_result.ok()
                  ? "completed (unexpected)"
                  : bounded_result.status().ToString().c_str());
  std::printf("deadline surfaced as DeadlineExceeded: %s\n",
              deadline_ok ? "YES" : "NO");
  std::printf("cancellation observed after %llu checks (%.2fms)\n",
              (unsigned long long)bounded_metrics.cancel_checks,
              bounded_metrics.time_to_cancel_us / 1000.0);
  return identical && deadline_ok ? 0 : 1;
}
