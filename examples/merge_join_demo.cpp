// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Sort-merge join demo — the operator class the paper uses to motivate
// cheap full-tuple comparisons (§V-B): "merge joins ... iterate sequentially
// over sorted runs and compare tuples."
//
//   SELECT o.*, c.* FROM orders o JOIN customer c
//   ON o.customer_sk = c.c_customer_sk;
//
// Both sides are sorted with the row-based pipeline; the join loop compares
// normalized keys across tables with a single memcmp per step.
#include <cstdio>

#include "common/random.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "engine/merge_join.h"
#include "workload/tpcds.h"

using namespace rowsort;

int main() {
  TpcdsScale scale;
  scale.scale_factor = 1;
  scale.scale_divisor = 50;  // 2,000 customers
  Table customer = MakeCustomer(scale);

  // Synthesize an orders table with a customer_sk foreign key.
  Random rng(99);
  Table orders({TypeId::kInt32, TypeId::kInt32},
               {"o_order_sk", "o_customer_sk"});
  const uint64_t num_orders = 10000;
  uint64_t produced = 0;
  while (produced < num_orders) {
    uint64_t n = std::min(kVectorSize, num_orders - produced);
    DataChunk chunk = orders.NewChunk();
    for (uint64_t r = 0; r < n; ++r) {
      chunk.SetValue(0, r, Value::Int32(static_cast<int32_t>(produced + r)));
      chunk.SetValue(
          1, r,
          Value::Int32(static_cast<int32_t>(
              rng.Uniform(customer.row_count() * 2)) + 1));  // ~50% match
    }
    chunk.SetSize(n);
    orders.Append(std::move(chunk));
    produced += n;
  }

  std::printf("orders: %s rows, customer: %s rows\n",
              FormatCount(orders.row_count()).c_str(),
              FormatCount(customer.row_count()).c_str());

  Timer timer;
  // o_customer_sk (orders col 1) = c_customer_sk (customer col 0).
  Table joined = SortMergeJoin(orders, customer, {{1, 0}}).ValueOrDie();
  std::printf("joined: %s rows in %s\n\n",
              FormatCount(joined.row_count()).c_str(),
              FormatDuration(timer.ElapsedSeconds()).c_str());

  std::printf("%-12s %-14s %-12s %-12s\n", "o_order_sk", "o_customer_sk",
              "c_last_name", "c_first_name");
  const DataChunk& chunk = joined.chunk(0);
  for (uint64_t r = 0; r < std::min<uint64_t>(10, chunk.size()); ++r) {
    std::printf("%-12s %-14s %-12s %-12s\n",
                chunk.GetValue(0, r).ToString().c_str(),
                chunk.GetValue(1, r).ToString().c_str(),
                chunk.GetValue(6, r).ToString().c_str(),
                chunk.GetValue(7, r).ToString().c_str());
  }
  std::printf("...\n");
  return 0;
}
