// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Mini version of the paper's §VII evaluation: run all five system
// stand-ins on one workload and print their execution times — a quick way
// to see the architectural differences (row vs columnar, compiled vs
// interpreted, single- vs multi-threaded) without running the full benches.
#include <cstdio>
#include <thread>

#include "common/string_util.h"
#include "common/timer.h"
#include "systems/system.h"
#include "workload/tables.h"
#include "workload/tpcds.h"

using namespace rowsort;

int main(int argc, char** argv) {
  uint64_t rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1'000'000;
  uint64_t threads = std::max(1u, std::thread::hardware_concurrency());

  std::printf("sorting %s shuffled integers, then catalog_sales by 4 keys "
              "(%llu threads)\n\n",
              FormatCount(rows).c_str(), (unsigned long long)threads);

  Table integers = MakeShuffledIntegerTable(rows, 5);
  SortSpec int_spec({SortColumn(0, TypeId::kInt32)});

  TpcdsScale scale;
  scale.scale_factor = 10;
  scale.scale_divisor =
      std::max<uint64_t>(TpcdsScale{10}.CatalogSalesRows() / rows, 1);
  Table catalog = MakeCatalogSales(scale);
  SortSpec multi_spec({SortColumn(0, TypeId::kInt32),
                       SortColumn(1, TypeId::kInt32),
                       SortColumn(2, TypeId::kInt32),
                       SortColumn(3, TypeId::kInt32)});

  std::printf("%-18s %18s %22s\n", "system", "integers",
              "catalog_sales 4 keys");
  for (auto& system : MakeAllSystems(threads)) {
    Timer t1;
    system->Sort(integers, int_spec);
    double ints = t1.ElapsedSeconds();
    Timer t2;
    system->Sort(catalog, multi_spec);
    double multi = t2.ElapsedSeconds();
    std::printf("%-18s %17.3fs %21.3fs\n", system->name().c_str(), ints,
                multi);
  }
  std::printf("\n(expected: MonetDB-like slowest; ClickHouse-like loses its "
              "radix path on multi-key; row-based systems degrade least)\n");
  return 0;
}
